"""The SSD backend: an FTL-level flash device behind the protocol.

Where :class:`~repro.disk.drive.SimDisk` models a spindle (positioning
+ transfer + spin-up penalties), this models a small flash device the
way the buffer tier would actually see one:

* **N channels** serve NAND operations in parallel; each channel is its
  own FIFO (priority) queue with per-page read/program timing and
  per-block erase timing.
* A small **write cache** accepts host writes at interface speed and
  destages them to flash in the background (FIFO, with backpressure
  once the cache is full).  Overwriting a still-dirty extent is
  absorbed -- one program, several host writes.
* A **page-mapped FTL** (:mod:`repro.backend.ftl`) places destaged
  extents, and **greedy GC** reclaims space when a channel runs low --
  relocation and erase traffic contends with host I/O on the same
  channel queues, which is exactly the write-amplification mechanism.
* **Power states** reuse the :class:`~repro.disk.states.DiskState`
  machine: STANDBY is DEVSLP, SPIN_UP/SPIN_DOWN are its (fast) exit and
  entry.  The :class:`~repro.disk.energy.EnergyMeter` integrates the
  rail power; per-operation NAND energies accrue separately and are
  added in :meth:`SSDBackend.energy_j`.

Observability: ``ssd.destage`` spans wrap each background extent
write-back, ``ssd.gc`` spans each garbage-collection round, and
``ssd.channel`` spans each channel job.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Deque, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.backend.ftl import ExtentMap, PageMappedFTL
from repro.disk.drive import (
    DiskFailureError,
    DiskRequest,
    PRIORITY_BACKGROUND,
    PRIORITY_DEMAND,
    RequestKind,
)
from repro.disk.energy import EnergyMeter
from repro.disk.specs import LowSpeedProfile
from repro.disk.states import DiskState
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.monitor import TallyStat
from repro.sim.process import Interrupt
from repro.sim.resources import PriorityStore, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.obs.tracer import Span


@dataclass(frozen=True)
class SSDSpec:
    """Physical parameters of a simulated SSD.

    The ``spinup_*``/``spindown_*`` properties map DEVSLP exit/entry
    onto the :class:`~repro.backend.protocol.BackendSpec` surface, so
    break-even analysis and the predictive power manager treat an SSD
    exactly like a (very cheap to sleep) drive.
    """

    name: str
    capacity_bytes: int
    n_channels: int = 4
    page_bytes: int = 64 * 1024
    pages_per_block: int = 64
    overprovision: float = 0.07
    gc_free_fraction: float = 0.10
    #: Per-page NAND timings (page = one superpage across planes).
    page_read_s: float = 0.0002
    page_program_s: float = 0.001
    block_erase_s: float = 0.003
    #: Per-operation NAND energies (on top of the rail power).
    page_read_energy_j: float = 50e-6
    page_program_energy_j: float = 400e-6
    block_erase_energy_j: float = 1.5e-3
    #: Host-interface write cache (DRAM): size and accept bandwidth.
    write_cache_bytes: int = 32 * 1024 * 1024
    cache_bandwidth_bps: float = 400e6
    #: Rail power by state; standby is DEVSLP.
    power_active_w: float = 2.6
    power_idle_w: float = 0.65
    power_standby_w: float = 0.005
    #: DEVSLP exit/entry: duration and energy.
    wake_s: float = 0.025
    wake_energy_j: float = 0.02
    sleep_s: float = 0.005
    sleep_energy_j: float = 0.002
    #: Endurance rating (program/erase cycles per block).
    rated_erase_cycles: int = 3000

    def __post_init__(self) -> None:
        if self.capacity_bytes < self.page_bytes:
            raise ValueError(f"{self.name}: capacity below one page")
        if self.n_channels < 1:
            raise ValueError(f"{self.name}: n_channels must be >= 1")
        if self.page_bytes < 1 or self.pages_per_block < 1:
            raise ValueError(f"{self.name}: page/block geometry must be positive")
        if not 0 < self.overprovision <= 0.5:
            raise ValueError(f"{self.name}: overprovision must be in (0, 0.5]")
        if not 0 < self.gc_free_fraction < 0.5:
            raise ValueError(f"{self.name}: gc_free_fraction must be in (0, 0.5)")
        for field_name in (
            "page_read_s",
            "page_program_s",
            "block_erase_s",
            "cache_bandwidth_bps",
            "wake_s",
            "sleep_s",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{self.name}: {field_name} must be > 0")
        for field_name in (
            "page_read_energy_j",
            "page_program_energy_j",
            "block_erase_energy_j",
            "wake_energy_j",
            "sleep_energy_j",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{self.name}: {field_name} must be >= 0")
        if self.write_cache_bytes < 0:
            raise ValueError(f"{self.name}: write_cache_bytes must be >= 0")
        if not self.power_standby_w < self.power_idle_w <= self.power_active_w:
            raise ValueError(
                f"{self.name}: want standby < idle <= active power, got "
                f"{self.power_standby_w!r} / {self.power_idle_w!r} / "
                f"{self.power_active_w!r}"
            )
        if self.wake_energy_j < self.power_standby_w * self.wake_s:
            raise ValueError(f"{self.name}: wake energy below the standby floor")
        if self.rated_erase_cycles < 1:
            raise ValueError(f"{self.name}: rated_erase_cycles must be >= 1")

    # -- BackendSpec power economics (DEVSLP mapped onto "spin") -------------------

    @property
    def spinup_s(self) -> float:
        return self.wake_s

    @property
    def spindown_s(self) -> float:
        return self.sleep_s

    @property
    def spinup_energy_j(self) -> float:
        return self.wake_energy_j

    @property
    def spindown_energy_j(self) -> float:
        return self.sleep_energy_j

    @property
    def spinup_power_w(self) -> float:
        return self.wake_energy_j / self.wake_s

    @property
    def spindown_power_w(self) -> float:
        return self.sleep_energy_j / self.sleep_s

    @property
    def low_speed(self) -> Optional[LowSpeedProfile]:
        """SSDs have no low-RPM operating point."""
        return None

    @property
    def n_logical_pages(self) -> int:
        return self.capacity_bytes // self.page_bytes

    def pages_for(self, size_bytes: int) -> int:
        """Pages an extent of *size_bytes* occupies (at least one)."""
        return max(1, -(-size_bytes // self.page_bytes))

    def with_overrides(self, **overrides: object) -> "SSDSpec":
        """A copy with some fields replaced (sweep convenience)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


#: A small SATA SSD of the paper's era -- the natural log-disk upgrade.
SATA_SSD_32GB = SSDSpec(name="sata-ssd-32g", capacity_bytes=32 * 1024**3)

#: A smaller, two-channel module: cheaper, more GC pressure.
SATA_SSD_8GB = SSDSpec(
    name="sata-ssd-8g",
    capacity_bytes=8 * 1024**3,
    n_channels=2,
    write_cache_bytes=16 * 1024 * 1024,
    power_active_w=2.1,
    power_idle_w=0.55,
)

SSD_CATALOG: Dict[str, SSDSpec] = {
    spec.name: spec for spec in (SATA_SSD_32GB, SATA_SSD_8GB)
}


class _ChannelJob:
    """One NAND operation batch bound for a single channel."""

    __slots__ = ("op", "channel", "pages", "erases", "priority", "done", "tag")

    def __init__(
        self,
        op: str,
        channel: int,
        pages: int,
        erases: int,
        priority: int,
        done: Event,
        tag: object = None,
    ) -> None:
        self.op = op  # "read" | "program" | "gc"
        self.channel = channel
        self.pages = pages
        self.erases = erases
        self.priority = priority
        self.done = done
        self.tag = tag


class _CacheEntry:
    """One dirty extent awaiting destage."""

    __slots__ = ("key", "size_bytes", "taken")

    def __init__(self, key: object, size_bytes: int) -> None:
        self.key = key
        self.size_bytes = size_bytes
        #: Set once the destager picks the entry up; a later overwrite
        #: of the same key must then stage a fresh entry.
        self.taken = False


class SSDBackend:
    """A flash device attached to the simulation.

    Mirrors the :class:`~repro.disk.drive.SimDisk` surface (it is the
    second implementation of
    :class:`~repro.backend.protocol.StorageBackend`): host requests are
    submitted with :meth:`submit` and served in priority order, the
    power manager drives :meth:`request_sleep`/:meth:`wake`, and the
    fault layer uses :meth:`fail`/:meth:`repair`/:meth:`set_slowdown`.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: SSDSpec,
        name: str = "ssd",
        auto_sleep_after: Optional[float] = None,
        spinup_jitter: float = 0.0,
        rng: Optional["np.random.Generator"] = None,
        record_history: bool = False,
    ) -> None:
        if auto_sleep_after is not None and auto_sleep_after < 0:
            raise ValueError(f"auto_sleep_after must be >= 0, got {auto_sleep_after!r}")
        if spinup_jitter < 0:
            raise ValueError(f"spinup_jitter must be >= 0, got {spinup_jitter!r}")
        if spinup_jitter > 0 and rng is None:
            raise ValueError("spinup_jitter > 0 requires an rng")
        self.sim = sim
        self.spec = spec
        self.name = name
        self.auto_sleep_after = auto_sleep_after
        self.spinup_jitter = float(spinup_jitter)
        self._rng = rng
        self.meter = EnergyMeter(
            spec,
            start_time=sim.now,
            initial_state=DiskState.IDLE,
            record_history=record_history,
        )
        self.ftl = PageMappedFTL(
            n_logical_pages=spec.n_logical_pages,
            pages_per_block=spec.pages_per_block,
            n_channels=spec.n_channels,
            overprovision=spec.overprovision,
            gc_free_fraction=spec.gc_free_fraction,
        )
        self.extents = ExtentMap(spec.n_logical_pages)
        self.queue: Store = PriorityStore(sim, priority_key=lambda r: r.priority)
        self._channel_queues: List[Store] = [
            PriorityStore(sim, priority_key=lambda j: j.priority)
            for _ in range(spec.n_channels)
        ]
        # Host-request surface (protocol counters).
        self.inflight = 0
        self.requests_served = 0
        self.bytes_served = 0
        self.slowdown = 1.0
        self.service_times = TallyStat(name=f"{name}:service")
        # Flash accounting beyond the FTL's own counters.
        self.host_pages_written = 0
        self.cache_hits = 0
        self._op_energy_j = 0.0
        # Write cache: FIFO of dirty extents + latest entry per key.
        self._dirty: Deque[_CacheEntry] = deque()
        self._dirty_by_key: Dict[object, _CacheEntry] = {}
        self._destaging_keys: Dict[object, int] = {}
        self._cache_used = 0
        #: Bumped whenever the cache accounting is wiped wholesale (on
        #: :meth:`fail`); a destage that straddles a wipe must not
        #: subtract its bytes from the already-zeroed counter.
        self._cache_wipes = 0
        self._cache_drained: Event = sim.event()
        self._dirty_staged: Event = sim.event()
        # DEVSLP machinery (mirrors SimDisk's transition plumbing).
        self._flaky_spinups = 0
        self._flaky_backoff_s = 0.0
        self.spinup_failures = 0
        self._transition_done: Event = sim.event()
        self._transition_span: Optional["Span"] = None
        self._idle_started: Event = sim.event()
        self._watchdog_timing = False
        #: Concurrent internal activities (host service, destage, GC);
        #: drives the ACTIVE/IDLE meter state.
        self._busy = 0
        self._server = sim.process(self._server_loop())
        self._destager = sim.process(self._destage_loop())
        self._channel_servers = [
            sim.process(self._channel_loop(ch)) for ch in range(spec.n_channels)
        ]
        self._watchdog = (
            sim.process(self._idle_watchdog()) if auto_sleep_after is not None else None
        )

    # -- public API (the StorageBackend surface) -----------------------------------

    @property
    def state(self) -> DiskState:
        """Current power state (STANDBY = DEVSLP)."""
        return self.meter.state

    @property
    def is_sleeping(self) -> bool:
        return self.state in (DiskState.STANDBY, DiskState.SPIN_DOWN)

    @property
    def dirty_bytes(self) -> int:
        """Bytes staged in the write cache, not yet fully on flash."""
        return self._cache_used

    @property
    def write_amplification(self) -> float:
        """NAND pages programmed per host page accepted (0.0 until the
        first host write)."""
        if self.host_pages_written == 0:
            return 0.0
        return self.ftl.counters.nand_pages_programmed / self.host_pages_written

    def submit(
        self,
        size_bytes: int,
        kind: RequestKind = RequestKind.READ,
        sequential: bool = False,
        tag: object = None,
        priority: int = PRIORITY_DEMAND,
    ) -> DiskRequest:
        """Enqueue a host request; same contract as ``SimDisk.submit``."""
        request = DiskRequest(
            size_bytes=size_bytes,
            kind=kind,
            sequential=sequential,
            priority=priority,
            tag=tag,
            issued_at=self.sim.now,
            done=self.sim.event(),
        )
        if self.state is DiskState.FAILED:
            request.done.fail(DiskFailureError(self.name))
            return request
        self.inflight += 1
        if self._watchdog_timing and self._watchdog is not None:
            self._watchdog.interrupt("activity")
        self.queue.put(request)
        if self.state is DiskState.STANDBY:
            self.wake()
        return request

    def request_sleep(self) -> bool:
        """Enter DEVSLP if fully quiescent.  Returns True if begun.

        Unlike a drive, an SSD also refuses to sleep on a dirty write
        cache -- the destager is about to program flash.
        """
        if (
            self.state is not DiskState.IDLE
            or self.inflight > 0
            or self._busy > 0
            or self._dirty
        ):
            return False
        self._begin_transition(DiskState.SPIN_DOWN, DiskState.STANDBY, self.spec.sleep_s)
        return True

    def wake(self) -> bool:
        """Exit DEVSLP.  Returns True if an exit began."""
        if self.state is not DiskState.STANDBY:
            return False
        duration = self.spec.wake_s
        if self.spinup_jitter > 0:
            assert self._rng is not None  # enforced in __init__
            factor = 1.0 + self._rng.normal(0.0, self.spinup_jitter)
            duration *= min(2.0, max(0.5, factor))
        if self._flaky_spinups > 0:
            self._flaky_spinups -= 1
            self.spinup_failures += 1
            self.sim.process(self._failed_wake(duration))
            return True
        self._begin_transition(DiskState.SPIN_UP, DiskState.IDLE, duration)
        return True

    def fail(self) -> None:
        """Controller failure: all queued host requests and channel jobs
        fail immediately; the write cache is lost.  Idempotent."""
        if self.state is DiskState.FAILED:
            return
        self._set_state(DiskState.FAILED)
        for request in self.queue.drain():
            self.inflight -= 1
            assert request.done is not None
            request.done.fail(DiskFailureError(self.name))
        for channel_queue in self._channel_queues:
            for job in channel_queue.drain():
                if not job.done.triggered:
                    job.done.fail(DiskFailureError(self.name))
                    job.done.defuse()
        self._dirty.clear()
        self._dirty_by_key.clear()
        self._destaging_keys.clear()
        self._cache_used = 0
        self._cache_wipes += 1
        # Release anything parked on cache backpressure or the destager's
        # wait-for-dirty; both re-check state/emptiness on wake-up.
        self._fire_cache_drained()
        self._fire_dirty_staged()
        pending = self._transition_done
        if not pending.triggered:
            pending.fail(DiskFailureError(self.name))
            pending.defuse()

    def repair(self) -> None:
        """Undo a :meth:`fail`: the device reboots in DEVSLP with its
        flash contents intact (an outage, not a media loss)."""
        if self.state is not DiskState.FAILED:
            return
        self._set_state(DiskState.STANDBY)
        if self.auto_sleep_after is not None and (
            self._watchdog is None or self._watchdog.triggered
        ):
            self._watchdog = self.sim.process(self._idle_watchdog())

    def set_idle_threshold(self, seconds: float) -> None:
        """Retarget the DEVSLP idle timer (same contract as SimDisk)."""
        if self.auto_sleep_after is None:
            raise ValueError(f"{self.name}: no idle timer to adjust")
        if seconds < 0:
            raise ValueError(f"idle threshold must be >= 0, got {seconds!r}")
        self.auto_sleep_after = float(seconds)

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore) the device: NAND and cache operation
        times scale by *factor* (thermal throttling, retries)."""
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1.0, got {factor!r}")
        self.slowdown = float(factor)

    def inject_spinup_failures(self, count: int, backoff_s: float = 1.0) -> None:
        """Arm the next *count* DEVSLP exits to fail (firmware retry)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count!r}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s!r}")
        self._flaky_spinups = count
        self._flaky_backoff_s = float(backoff_s)

    def finalize(self) -> None:
        """Close the energy account at the current time."""
        self.meter.finalize(self.sim.now)

    def energy_j(self) -> float:
        """Joules consumed so far: rail power integral + NAND op energy."""
        return self.meter.energy_j(until=self.sim.now) + self._op_energy_j

    @property
    def transition_count(self) -> int:
        """Counted DEVSLP entries + exits (the Fig. 4 metric's analog)."""
        return self.meter.transition_count

    @property
    def utilization(self) -> float:
        """Fraction of elapsed time with at least one channel busy."""
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        active = self.meter.time_in_state[DiskState.ACTIVE]
        if self.state is DiskState.ACTIVE:
            active += elapsed - self.meter._last_time
        return active / elapsed

    # -- power-state internals (mirrors SimDisk) ------------------------------------

    def _set_state(self, new_state: DiskState) -> None:
        if new_state is self.state:
            return
        self.meter.transition(self.sim.now, new_state)

    def _begin_transition(
        self, via: DiskState, target: DiskState, duration: float
    ) -> None:
        self._set_state(via)
        tracer = self.sim.tracer
        if tracer is not None:
            span_kind = "spinup" if via is DiskState.SPIN_UP else "spindown"
            self._transition_span = tracer.begin(
                span_kind, self.name, target=target.value
            )
        self._transition_done = self.sim.event()
        self.sim.process(self._finish_transition(target, duration))

    def _end_transition_span(self, **tags: object) -> None:
        span = self._transition_span
        if span is not None:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.end(span, **tags)
            self._transition_span = None

    def _finish_transition(
        self, target: DiskState, duration: float
    ) -> Generator[Event, Any, None]:
        done = self._transition_done
        yield self.sim.timeout(duration)
        if self.state is DiskState.FAILED:
            self._end_transition_span(ok=False)
            return
        self._set_state(target)
        self._end_transition_span()
        done.succeed()
        if target is DiskState.STANDBY and self.inflight > 0:
            self.wake()

    def _failed_wake(self, duration: float) -> Generator[Event, Any, None]:
        """An injected DEVSLP-exit failure: full exit time and energy,
        fall back to STANDBY, observe the back-off, release waiters."""
        self._set_state(DiskState.SPIN_UP)
        tracer = self.sim.tracer
        if tracer is not None:
            self._transition_span = tracer.begin(
                "spinup", self.name, injected_failure=True
            )
        self._transition_done = self.sim.event()
        done = self._transition_done
        yield self.sim.timeout(duration)
        if self.state is DiskState.FAILED:
            self._end_transition_span(ok=False)
            return
        self._set_state(DiskState.STANDBY)
        self._end_transition_span(ok=False)
        if self._flaky_backoff_s > 0:
            yield self.sim.timeout(self._flaky_backoff_s)
        if done.triggered:
            return
        done.succeed()
        if self.inflight > 0 and self.state is DiskState.STANDBY:
            self.wake()

    def _busy_enter(self) -> None:
        self._busy += 1
        if self._busy == 1 and self.state is DiskState.IDLE:
            self._set_state(DiskState.ACTIVE)

    def _busy_exit(self) -> None:
        self._busy -= 1
        if self._busy == 0 and self.state is DiskState.ACTIVE:
            self._set_state(DiskState.IDLE)
            if self.inflight == 0:
                self._signal_idle()

    def _signal_idle(self) -> None:
        event, self._idle_started = self._idle_started, self.sim.event()
        event.succeed()

    def _until_serviceable(self) -> Generator[Event, Any, None]:
        """Wait out transitions / leave DEVSLP; raises on a dead device."""
        while not self.state.can_serve and self.state is not DiskState.ACTIVE:
            if self.state is DiskState.FAILED:
                raise DiskFailureError(self.name)
            if self.state is DiskState.STANDBY:
                self.wake()
            yield self._transition_done

    def _idle_watchdog(self) -> Generator[Event, Any, None]:
        """Built-in DEVSLP idle timer (armed via ``auto_sleep_after``)."""
        sim = self.sim
        while True:
            auto_sleep_after = self.auto_sleep_after
            assert auto_sleep_after is not None  # watchdog only started when set
            if (
                self.state is DiskState.IDLE
                and self.inflight == 0
                and self._busy == 0
                and not self._dirty
            ):
                self._watchdog_timing = True
                try:
                    yield sim.timeout(auto_sleep_after)
                    self.request_sleep()
                except Interrupt:
                    pass  # activity arrived; wait for the next idle period
                finally:
                    self._watchdog_timing = False
            else:
                yield self._idle_started

    # -- host service ----------------------------------------------------------------

    def _server_loop(self) -> Generator[Event, Any, None]:
        sim = self.sim
        while True:
            request: DiskRequest = yield self.queue.get()
            try:
                yield from self._until_serviceable()
            except DiskFailureError as failure:
                self.inflight -= 1
                assert request.done is not None
                request.done.fail(failure)
                continue
            self._busy_enter()
            started = sim.now
            try:
                if request.kind is RequestKind.WRITE:
                    yield from self._serve_write(request)
                else:
                    yield from self._serve_read(request)
            except DiskFailureError as failure:
                self.inflight -= 1
                self._busy_exit()
                assert request.done is not None
                if not request.done.triggered:
                    request.done.fail(failure)
                continue
            self.inflight -= 1
            self._busy_exit()
            self.requests_served += 1
            self.bytes_served += request.size_bytes
            self.service_times.record(sim.now - started)
            assert request.done is not None
            request.done.succeed(request)

    def _serve_write(self, request: DiskRequest) -> Generator[Event, Any, None]:
        """Accept a write into the cache (backpressure when full)."""
        size = request.size_bytes
        spec = self.spec
        # Backpressure: wait for destage progress until the data fits.
        # Extents larger than the whole cache pass once it is empty --
        # the cache then acts as a staging window, not a bound.
        while self._cache_used > 0 and self._cache_used + size > spec.write_cache_bytes:
            yield self._cache_drained
            if self.state is DiskState.FAILED:
                raise DiskFailureError(self.name)
        yield self.sim.timeout(self.slowdown * size / spec.cache_bandwidth_bps)
        if self.state is DiskState.FAILED:
            # The device died mid-transfer: the data never became durable
            # (unlike a drive, where an in-service request is already on
            # the platters at simulation granularity).
            raise DiskFailureError(self.name)
        self.host_pages_written += spec.pages_for(size)
        key = self._extent_key(request)
        entry = self._dirty_by_key.get(key)
        if entry is not None and not entry.taken:
            # Write absorption: replace the still-pending dirty entry.
            self._cache_used += size - entry.size_bytes
            entry.size_bytes = size
        else:
            entry = _CacheEntry(key, size)
            self._dirty.append(entry)
            self._dirty_by_key[key] = entry
            self._cache_used += size
            self._fire_dirty_staged()

    def _serve_read(self, request: DiskRequest) -> Generator[Event, Any, None]:
        """Serve a read: from the cache if dirty, else from flash."""
        size = request.size_bytes
        key = self._extent_key(request)
        if key in self._dirty_by_key or key in self._destaging_keys:
            self.cache_hits += 1
            yield self.sim.timeout(self.slowdown * size / self.spec.cache_bandwidth_bps)
            return
        pages = self.extents.lookup(key)
        if pages is None:
            # Content that predates the simulation (or was evicted):
            # synthesize its stripe without allocating logical space.
            count = self.spec.pages_for(size)
            span = self.ftl.n_logical_pages
            pages = [i % span for i in range(count)]
        per_channel = self.ftl.read_pages(pages)
        jobs = [
            self._issue_job("read", channel, count, 0, request.priority, tag=key)
            for channel, count in enumerate(per_channel)
            if count > 0
        ]
        if jobs:
            yield self.sim.all_of([job.done for job in jobs])

    @staticmethod
    def _extent_key(request: DiskRequest) -> object:
        """Extent identity for a request: the file id when the caller
        tagged one (``(op, file_id)`` tuples throughout the node), else
        the request itself (unique, never coalesced)."""
        tag = request.tag
        if isinstance(tag, tuple) and len(tag) == 2:
            return tag[1]
        if tag is not None:
            return tag
        return request.request_id

    # -- destage + GC ----------------------------------------------------------------

    def _fire_dirty_staged(self) -> None:
        event, self._dirty_staged = self._dirty_staged, self.sim.event()
        event.succeed()

    def _fire_cache_drained(self) -> None:
        event, self._cache_drained = self._cache_drained, self.sim.event()
        event.succeed()

    def _destage_loop(self) -> Generator[Event, Any, None]:
        """Drain the write cache to flash, oldest extent first."""
        sim = self.sim
        while True:
            if not self._dirty:
                yield self._dirty_staged
                continue
            try:
                yield from self._until_serviceable()
            except DiskFailureError:
                # The device is dead; whatever is (or raced its way)
                # into the cache is lost with it.  Clearing here also
                # guarantees the loop re-parks instead of spinning.
                self._dirty.clear()
                self._dirty_by_key.clear()
                self._cache_used = 0
                self._cache_wipes += 1
                continue
            entry = self._dirty.popleft()
            entry.taken = True
            wipes_at_take = self._cache_wipes
            if self._dirty_by_key.get(entry.key) is entry:
                del self._dirty_by_key[entry.key]
            self._destaging_keys[entry.key] = (
                self._destaging_keys.get(entry.key, 0) + 1
            )
            self._busy_enter()
            tracer = sim.tracer
            span = None
            if tracer is not None:
                span = tracer.begin(
                    "ssd.destage", self.name, key=str(entry.key), bytes=entry.size_bytes
                )
            try:
                yield from self._destage_one(entry)
            except DiskFailureError:
                if span is not None and tracer is not None:
                    tracer.end(span, ok=False)
                self._busy_exit()
                self._forget_destaging(entry.key)
                continue
            if span is not None and tracer is not None:
                tracer.end(span, ok=True)
            self._busy_exit()
            self._forget_destaging(entry.key)
            if self._cache_wipes == wipes_at_take:
                self._cache_used -= entry.size_bytes
            self._fire_cache_drained()

    def _forget_destaging(self, key: object) -> None:
        remaining = self._destaging_keys.get(key, 0) - 1
        if remaining <= 0:
            self._destaging_keys.pop(key, None)
        else:
            self._destaging_keys[key] = remaining

    def _destage_one(self, entry: _CacheEntry) -> Generator[Event, Any, None]:
        """Program one extent: allocate logical space, run any GC the
        allocation triggers, then program the pages per channel."""
        # An extent larger than the device overwrites the whole logical
        # space once -- the buffer tier cannot hold more than itself.
        n_pages = min(self.spec.pages_for(entry.size_bytes), self.extents.n_pages)
        logical_pages, evicted = self.extents.allocate(entry.key, n_pages)
        if evicted:
            self.ftl.trim_pages(evicted)
        plan = self.ftl.write_pages(logical_pages)
        jobs = [
            self._issue_job(
                "gc", event.channel, event.pages_moved, 1, PRIORITY_BACKGROUND,
                tag=event.block,
            )
            for event in plan.gc_events
        ]
        jobs.extend(
            self._issue_job(
                "program", channel, count, 0, PRIORITY_BACKGROUND, tag=entry.key
            )
            for channel, count in enumerate(plan.programs)
            if count > 0
        )
        if jobs:
            yield self.sim.all_of([job.done for job in jobs])

    # -- channels --------------------------------------------------------------------

    def _issue_job(
        self,
        op: str,
        channel: int,
        pages: int,
        erases: int,
        priority: int,
        tag: object = None,
    ) -> _ChannelJob:
        job = _ChannelJob(op, channel, pages, erases, priority, self.sim.event(), tag)
        self._channel_queues[channel].put(job)
        return job

    def _job_duration_s(self, job: _ChannelJob) -> float:
        spec = self.spec
        if job.op == "read":
            nand = job.pages * spec.page_read_s
        elif job.op == "program":
            nand = job.pages * spec.page_program_s
        else:  # gc: relocation reads + programs, then the erase
            nand = (
                job.pages * (spec.page_read_s + spec.page_program_s)
                + job.erases * spec.block_erase_s
            )
        return self.slowdown * nand

    def _job_energy_j(self, job: _ChannelJob) -> float:
        spec = self.spec
        if job.op == "read":
            return job.pages * spec.page_read_energy_j
        if job.op == "program":
            return job.pages * spec.page_program_energy_j
        return (
            job.pages * (spec.page_read_energy_j + spec.page_program_energy_j)
            + job.erases * spec.block_erase_energy_j
        )

    def _channel_loop(self, channel: int) -> Generator[Event, Any, None]:
        sim = self.sim
        queue = self._channel_queues[channel]
        while True:
            job: _ChannelJob = yield queue.get()
            self._busy_enter()
            duration = self._job_duration_s(job)
            tracer = sim.tracer
            span: Optional["Span"] = None
            if tracer is not None:
                kind = "ssd.gc" if job.op == "gc" else "ssd.channel"
                span = tracer.begin(
                    kind, self.name, channel=channel, op=job.op, pages=job.pages
                )
            yield sim.timeout(duration)
            if span is not None and tracer is not None:
                tracer.end(span)
            self._op_energy_j += self._job_energy_j(job)
            self._busy_exit()
            if not job.done.triggered:
                job.done.succeed(job)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SSDBackend {self.name} {self.state.value} "
            f"inflight={self.inflight} WA={self.write_amplification:.2f} "
            f"erases={self.ftl.counters.blocks_erased}>"
        )
