"""repro.online -- adaptive prefetching without the oracle access log.

The paper's energy savings rest on popularity rankings and access hints
derived from a complete trace known in advance.  This package removes
that assumption: streaming estimators learn popularity from the
observed request stream, a feedback controller retunes prefetch-K and
the disk idle threshold from measured hit ratios and spin-up churn, and
a drift-gated replanner re-prefetches buffer disks as the workload
moves.  Enable with ``EEVFSConfig(online_mode=True)``.
"""

from repro.online.controller import ControlSample, OnlineController, OnlineStats
from repro.online.estimators import (
    build_estimator,
    CountMinEstimator,
    CountMinSketch,
    EMAEstimator,
    OnlineEstimator,
)
from repro.online.replan import ReplanLoop

__all__ = [
    "build_estimator",
    "ControlSample",
    "CountMinEstimator",
    "CountMinSketch",
    "EMAEstimator",
    "OnlineController",
    "OnlineEstimator",
    "OnlineStats",
    "ReplanLoop",
]
