"""The adaptive online controller (one sim process per cluster).

Without the oracle there is nothing to tell the system the right
prefetch depth or idle threshold, so online mode closes the loop on
its own measurements instead.  Every ``online_control_interval_s`` of
simulated time the controller:

* computes the buffer-hit ratio over the *window just ended* (deltas of
  the nodes' hit counters, not lifetime totals) and steps prefetch-K by
  ``online_k_step`` toward the ``online_target_hit_ratio`` set-point --
  only when the ratio falls outside the ``+/- online_hysteresis``
  dead-band, so the controller does not chatter around the target;
* computes the per-data-disk spin-up rate over the window and steps
  the disks' built-in idle timers: spinning up too often means the
  timer is too eager (raise it), while a quiet window with the hit
  target met means it can afford to sleep sooner (lower it).  Applied
  thresholds are clamped to the configured band and lower-bounded by
  each drive's break-even time (sleeping shorter would cost energy).

The adjusted K is consumed by :class:`~repro.online.replan.ReplanLoop`
at its next epoch; thresholds act on the drives directly via
:meth:`~repro.disk.drive.SimDisk.set_idle_threshold`.  Every tick is
recorded as a plain-data :class:`ControlSample` (the hit-ratio/K time
series in reports) and traced as an ``online.control`` instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.core.config import EEVFSConfig
from repro.core.prediction import effective_threshold
from repro.sim.engine import Simulator
from repro.sim.events import Event

if TYPE_CHECKING:
    from repro.core.node import StorageNode


@dataclass(frozen=True)
class ControlSample:
    """One controller tick: what it saw and what it set."""

    time_s: float
    hit_ratio: Optional[float]
    spinup_rate: float
    k: int
    idle_threshold_s: float


@dataclass
class OnlineStats:
    """Plain-data summary of an online run's control/replan activity.

    Rides :class:`~repro.core.filesystem.RunResult` (picklable across
    the repro.parallel process boundary, like every other stats block).
    """

    estimator: str
    k_initial: int
    k_final: int
    idle_initial_s: float
    idle_final_s: float
    control_ticks: int = 0
    k_raises: int = 0
    k_cuts: int = 0
    idle_raises: int = 0
    idle_cuts: int = 0
    replan_epochs: int = 0
    replans_triggered: int = 0
    replans_skipped: int = 0
    #: Subset of the skips where drift had fired but the cost gate
    #: (``online_replan_cost_gate``) vetoed the migration as uneconomic.
    replans_cost_vetoed: int = 0
    max_drift: float = 0.0
    #: Accesses the streaming estimator ingested (set at run end).
    samples_recorded: int = 0
    history: List[ControlSample] = field(default_factory=list)


class OnlineController:
    """Feedback controller for prefetch-K and the disk idle threshold."""

    def __init__(
        self,
        sim: Simulator,
        nodes: "List[StorageNode]",
        config: EEVFSConfig,
    ) -> None:
        self.sim = sim
        self.nodes = nodes
        self.config = config
        self.k = min(
            max(config.prefetch_files, config.online_k_min), config.online_k_max
        )
        self.idle_threshold_s = min(
            max(config.idle_threshold_s, config.online_idle_min_s),
            config.online_idle_max_s,
        )
        self.stats = OnlineStats(
            estimator=config.online_estimator,
            k_initial=self.k,
            k_final=self.k,
            idle_initial_s=self.idle_threshold_s,
            idle_final_s=self.idle_threshold_s,
        )
        self._last_buffer_hits = 0
        self._last_data_hits = 0
        self._last_spinups = 0

    # -- observation helpers -------------------------------------------------------

    def _data_disks(self) -> List[Any]:
        return [disk for node in self.nodes for disk in node.data_disks]

    def _counters(self) -> tuple[int, int, int]:
        buffer_hits = sum(node.buffer_hits for node in self.nodes)
        data_hits = sum(node.data_disk_hits for node in self.nodes)
        spinups = sum(disk.meter.spinup_count for disk in self._data_disks())
        return buffer_hits, data_hits, spinups

    # -- the control loop ----------------------------------------------------------

    def start(self) -> None:
        """Arm the loop (called at the trace epoch: ticks are workload-relative)."""
        self._last_buffer_hits, self._last_data_hits, self._last_spinups = (
            self._counters()
        )
        self.sim.process(self._loop())

    def _loop(self) -> Generator[Event, Any, None]:
        config = self.config
        interval = config.online_control_interval_s
        while True:
            yield self.sim.timeout(interval)
            buffer_hits, data_hits, spinups = self._counters()
            window_hits = buffer_hits - self._last_buffer_hits
            window_served = window_hits + (data_hits - self._last_data_hits)
            window_spinups = spinups - self._last_spinups
            self._last_buffer_hits = buffer_hits
            self._last_data_hits = data_hits
            self._last_spinups = spinups

            hit_ratio = window_hits / window_served if window_served else None
            n_disks = max(1, len(self._data_disks()))
            spinup_rate = window_spinups / n_disks / (interval / 60.0)

            self._adjust_k(hit_ratio)
            self._adjust_idle_threshold(hit_ratio, spinup_rate)

            self.stats.control_ticks += 1
            self.stats.k_final = self.k
            self.stats.idle_final_s = self.idle_threshold_s
            self.stats.history.append(
                ControlSample(
                    time_s=self.sim.now,
                    hit_ratio=hit_ratio,
                    spinup_rate=spinup_rate,
                    k=self.k,
                    idle_threshold_s=self.idle_threshold_s,
                )
            )
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    "online.control",
                    "online",
                    k=self.k,
                    idle_threshold_s=self.idle_threshold_s,
                    hit_ratio=hit_ratio,
                    spinup_rate=spinup_rate,
                )

    def _adjust_k(self, hit_ratio: Optional[float]) -> None:
        """Step K toward the hit-ratio set-point, inside the dead-band."""
        if hit_ratio is None:
            return  # idle window: no evidence either way
        config = self.config
        if hit_ratio < config.online_target_hit_ratio - config.online_hysteresis:
            new_k = min(config.online_k_max, self.k + config.online_k_step)
            if new_k != self.k:
                self.k = new_k
                self.stats.k_raises += 1
        elif hit_ratio > config.online_target_hit_ratio + config.online_hysteresis:
            new_k = max(config.online_k_min, self.k - config.online_k_step)
            if new_k != self.k:
                self.k = new_k
                self.stats.k_cuts += 1

    def _adjust_idle_threshold(
        self, hit_ratio: Optional[float], spinup_rate: float
    ) -> None:
        """Step the idle timers from the observed spin-up churn."""
        config = self.config
        if spinup_rate > config.online_spinup_rate_max:
            target = min(
                config.online_idle_max_s,
                self.idle_threshold_s + config.online_idle_step_s,
            )
            if target != self.idle_threshold_s:
                self.idle_threshold_s = target
                self.stats.idle_raises += 1
                self._apply_idle_threshold()
        elif (
            spinup_rate == 0.0
            and hit_ratio is not None
            and hit_ratio >= config.online_target_hit_ratio
        ):
            target = max(
                config.online_idle_min_s,
                self.idle_threshold_s - config.online_idle_step_s,
            )
            if target != self.idle_threshold_s:
                self.idle_threshold_s = target
                self.stats.idle_cuts += 1
                self._apply_idle_threshold()

    def _apply_idle_threshold(self) -> None:
        for node in self.nodes:
            for disk in node.data_disks:
                if disk.auto_sleep_after is None:
                    continue  # not power-managed in this mode
                disk.set_idle_threshold(
                    effective_threshold(disk.spec, self.idle_threshold_s)
                )

    def snapshot(self) -> OnlineStats:
        """The run's control history (plain data, picklable)."""
        return self.stats
