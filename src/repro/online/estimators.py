"""Streaming popularity estimation (online mode, no oracle).

The paper derives its popularity ranking from a *complete* access trace
known in advance (§IV-A).  Online mode replaces that oracle with
estimators that learn from the observed request stream only, while
satisfying the same :class:`~repro.core.popularity.PopularitySource`
ranking/top-K protocol so placement, prefetch planning and replanning
can consume either interchangeably:

* :class:`EMAEstimator` -- exact per-file exponentially-decayed counts.
  Memory is O(distinct files observed); the decay half-life makes the
  ranking track popularity drift instead of lifetime totals.
* :class:`CountMinEstimator` -- a Count-Min Sketch (conservative
  update) plus a bounded decaying top-set.  Memory is O(width x depth
  + capacity) regardless of catalog size; estimates overcount by at
  most the classic eps*N sketch bound, never undercount.

Determinism: neither estimator draws randomness.  EMA decay is a pure
function of access timestamps; the sketch's row hashes are fixed
odd multipliers derived from SHA-256 of the row index, so the same
stream always produces the same ranking on every platform.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import EEVFSConfig

#: Renormalise EMA weights once the shared exponent passes this many
#: half-lives, keeping scores in floating-point range over arbitrarily
#: long runs without changing their ratios (hence never the ranking).
_EMA_RESCALE_HALFLIVES = 256.0


def _ranked(scores: Dict[int, float], catalog: Optional[Sequence[int]]) -> List[int]:
    """Total order: observed files by score desc (ties: lower id first),
    then unobserved catalog files ascending -- the same shape the oracle
    :class:`~repro.core.popularity.PopularityEstimator` produces."""
    observed = sorted(scores, key=lambda fid: (-scores[fid], fid))
    if catalog is None:
        return observed
    catalog_set = set(catalog)
    unknown = [fid for fid in observed if fid not in catalog_set]
    if unknown:
        raise ValueError(f"stream contains files outside the catalog: {unknown[:5]}")
    seen = set(observed)
    return observed + sorted(fid for fid in catalog if fid not in seen)


class EMAEstimator:
    """Exact exponentially-decayed access scores, one per observed file.

    Each access at time ``t`` contributes weight ``2**((t - t_now) /
    halflife)`` when read at ``t_now``: an access loses half its weight
    every half-life.  Internally scores share a common time origin so
    ``record`` is O(1) and no per-read decay sweep is needed; the origin
    is shifted (rescaling every score by the same factor) before the
    shared exponent can overflow.
    """

    def __init__(self, halflife_s: float = 120.0) -> None:
        if halflife_s <= 0:
            raise ValueError(f"halflife_s must be > 0, got {halflife_s!r}")
        self.halflife_s = halflife_s
        self._scores: Dict[int, float] = {}
        self._origin_s = 0.0
        self._last_s = 0.0
        self.recorded = 0

    def record(self, time_s: float, file_id: int) -> None:
        """Ingest one observed access (times must be non-decreasing)."""
        if time_s < self._last_s:
            raise ValueError(
                f"accesses must arrive in time order: {time_s} < {self._last_s}"
            )
        self._last_s = time_s
        exponent = (time_s - self._origin_s) / self.halflife_s
        if exponent > _EMA_RESCALE_HALFLIVES:
            factor = 2.0 ** (-exponent)
            for fid in list(self._scores):
                self._scores[fid] *= factor
            self._origin_s = time_s
            exponent = 0.0
        self._scores[file_id] = self._scores.get(file_id, 0.0) + 2.0**exponent
        self.recorded += 1

    def estimate(self, file_id: int) -> float:
        """Decayed score of *file_id* as of the last recorded access."""
        score = self._scores.get(file_id, 0.0)
        decay = 2.0 ** ((self._origin_s - self._last_s) / self.halflife_s)
        return score * decay

    def counts(self) -> Dict[int, float]:
        """Decayed scores per observed file (ranking weights)."""
        return {fid: self.estimate(fid) for fid in sorted(self._scores)}

    def ranking(self, catalog: Optional[Sequence[int]] = None) -> List[int]:
        return _ranked(self._scores, catalog)

    def top_k(self, k: int, catalog: Optional[Sequence[int]] = None) -> List[int]:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k!r}")
        return self.ranking(catalog)[:k]


class CountMinSketch:
    """A Count-Min Sketch with conservative update and aging.

    ``depth`` rows of ``width`` counters; each key hashes to one cell
    per row via a fixed multiply-shift hash (odd multipliers from
    SHA-256 of the row index -- no RNG, no per-run salt).  Estimates
    are upper bounds: ``estimate(k) >= true count`` always, and
    overshoot is bounded by ``e/width * total`` per the standard
    analysis.  :meth:`age` halves every counter, giving the sketch the
    same drift-tracking decay as the exact estimator.
    """

    _HASH_BITS = 64

    def __init__(self, width: int = 512, depth: int = 4) -> None:
        if width < 1 or depth < 1:
            raise ValueError(f"need width/depth >= 1, got {width}x{depth}")
        self.width = width
        self.depth = depth
        self._multipliers = tuple(self._multiplier(row) for row in range(depth))
        self._cells: List[List[float]] = [[0.0] * width for _ in range(depth)]
        self.total = 0.0

    @staticmethod
    def _multiplier(row: int) -> int:
        digest = hashlib.sha256(f"cms-row-{row}".encode()).digest()
        return int.from_bytes(digest[:8], "big") | 1  # odd => full period

    def _cell_indices(self, key: int) -> Tuple[int, ...]:
        mask = 2**self._HASH_BITS - 1
        masked = key & mask
        # High 32 bits of the 64-bit product, then fold to the row width
        # (the low product bits are the weak ones in multiply hashing).
        return tuple(
            (((mult * masked) & mask) >> 32) % self.width
            for mult in self._multipliers
        )

    def update(self, key: int, amount: float = 1.0) -> float:
        """Add *amount* (conservative update) and return the new estimate."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount!r}")
        indices = self._cell_indices(key)
        current = min(
            self._cells[row][idx] for row, idx in enumerate(indices)
        )
        target = current + amount
        for row, idx in enumerate(indices):
            if self._cells[row][idx] < target:
                self._cells[row][idx] = target
        self.total += amount
        return target

    def estimate(self, key: int) -> float:
        """Estimated count (never an undercount)."""
        return min(
            self._cells[row][idx]
            for row, idx in enumerate(self._cell_indices(key))
        )

    def age(self, factor: float = 0.5) -> None:
        """Decay every counter by *factor* (popularity-drift aging)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"factor must be in [0, 1], got {factor!r}")
        for row in self._cells:
            for idx in range(self.width):
                row[idx] *= factor
        self.total *= factor


class CountMinEstimator:
    """Count-Min Sketch + a bounded decaying top-set.

    The sketch answers "how often was this file accessed (roughly)?" in
    O(1) memory per counter; the top-set keeps the ``capacity``
    highest-estimate files exactly, which is all the ranking protocol
    needs for prefetch-sized K.  Every ``halflife_s`` of stream time
    both structures are halved, so a file that stops being accessed
    decays out of the top-set and drifted-onto files displace it.

    Ranking semantics match :class:`EMAEstimator`: top-set files by
    estimate desc (ties: lower id), then the rest of the catalog
    ascending.  Files observed but evicted from the top-set fall back
    into the catalog tail -- the approximation the sketch buys memory
    with.
    """

    def __init__(
        self,
        width: int = 512,
        depth: int = 4,
        capacity: int = 256,
        halflife_s: float = 120.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if halflife_s <= 0:
            raise ValueError(f"halflife_s must be > 0, got {halflife_s!r}")
        self.sketch = CountMinSketch(width=width, depth=depth)
        self.capacity = capacity
        self.halflife_s = halflife_s
        self._top: Dict[int, float] = {}
        self._next_age_s: Optional[float] = None
        self._last_s = 0.0
        self.recorded = 0
        self.evictions = 0

    def record(self, time_s: float, file_id: int) -> None:
        """Ingest one observed access (times must be non-decreasing)."""
        if time_s < self._last_s:
            raise ValueError(
                f"accesses must arrive in time order: {time_s} < {self._last_s}"
            )
        self._last_s = time_s
        if self._next_age_s is None:
            self._next_age_s = time_s + self.halflife_s
        while time_s >= self._next_age_s:
            self.sketch.age(0.5)
            for fid in list(self._top):
                self._top[fid] *= 0.5
            self._next_age_s += self.halflife_s
        estimate = self.sketch.update(file_id)
        if file_id in self._top or len(self._top) < self.capacity:
            self._top[file_id] = estimate
        else:
            # Evict the weakest candidate (ties: higher id goes first so
            # the surviving set is deterministic) if this file beats it.
            weakest = min(self._top, key=lambda fid: (self._top[fid], -fid))
            if estimate > self._top[weakest]:
                del self._top[weakest]
                self._top[file_id] = estimate
                self.evictions += 1
        self.recorded += 1

    def estimate(self, file_id: int) -> float:
        return self.sketch.estimate(file_id)

    def counts(self) -> Dict[int, float]:
        """Current top-set estimates (ranking weights)."""
        return {fid: self._top[fid] for fid in sorted(self._top)}

    def ranking(self, catalog: Optional[Sequence[int]] = None) -> List[int]:
        return _ranked(self._top, catalog)

    def top_k(self, k: int, catalog: Optional[Sequence[int]] = None) -> List[int]:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k!r}")
        return self.ranking(catalog)[:k]


#: Either streaming estimator (both satisfy PopularitySource).
OnlineEstimator = Union[EMAEstimator, CountMinEstimator]

#: Relative-error guard used by tests: with width w, overshoot on a
#: stream of N updates is < e/w * N with probability 1 - exp(-depth).
CMS_EPSILON_FACTOR = math.e


def build_estimator(config: EEVFSConfig) -> OnlineEstimator:
    """Construct the configured streaming estimator."""
    if config.online_estimator == "cms":
        return CountMinEstimator(
            width=config.online_cms_width,
            depth=config.online_cms_depth,
            capacity=config.online_cms_capacity,
            halflife_s=config.online_halflife_s,
        )
    return EMAEstimator(halflife_s=config.online_halflife_s)
