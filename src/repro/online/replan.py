"""Drift-triggered re-prefetching (online mode's epoch loop).

The oracle prefetches once, at setup, because it already knows the
whole trace.  Online mode starts with *empty* buffer disks and learns:
every ``online_replan_epoch_s`` of simulated time the replanner

1. ranks the streaming estimator's current view over the catalog
   (traced as ``online.estimate``),
2. takes the top-K at the controller's *current* adaptive K,
3. measures drift -- the fraction of that top-K not covered by the
   plan the buffers currently hold -- and,
4. when drift reaches ``online_drift_threshold`` (or the buffers were
   never populated), pushes a replacement plan through the existing
   prefetch path: ``PrefetchCommand(replace=True)`` per node, which
   copies newly wanted files and unmarks no-longer-wanted ones
   (traced as ``online.replan``).

The drift gate is what makes this cheaper than blind periodic
re-prefetching: a stable workload converges after one or two epochs and
then stops moving data entirely.

With ``online_replan_cost_gate`` enabled, a drifted plan must also pay
for itself: the loop estimates the migration energy of copying the newly
wanted files into the buffer tier and an (optimistic) projection of the
energy those copies can save over the next epoch, and skips the replan
when the cost exceeds the projection.  This is what tames the
saturation regime -- at 50 MB files every replan moves gigabytes while a
throttled client produces only a handful of hits per epoch to pay for
them.  The savings projection is deliberately optimistic (it assumes
every next-epoch access lands in the top-K), so the gate only vetoes
replans that cannot break even even under the rosiest forecast.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Set, TYPE_CHECKING

from repro.core.config import EEVFSConfig
from repro.core.prefetch import plan_prefetch
from repro.core.protocol import PrefetchCommand
from repro.online.controller import OnlineController
from repro.online.estimators import OnlineEstimator
from repro.sim.engine import Simulator
from repro.sim.events import Event

if TYPE_CHECKING:
    from repro.core.server import StorageServer


class ReplanLoop:
    """Epoch-based top-K diffing against the current buffer plan."""

    def __init__(
        self,
        sim: Simulator,
        server: "StorageServer",
        estimator: OnlineEstimator,
        controller: OnlineController,
        config: EEVFSConfig,
    ) -> None:
        self.sim = sim
        self.server = server
        self.estimator = estimator
        self.controller = controller
        self.config = config
        #: Files the buffer disks were last told to hold (empty until
        #: the first replan -- online mode starts cold).
        self._planned: Set[int] = set()
        #: Estimator count at the previous epoch boundary, for the
        #: per-epoch access-rate estimate the cost gate projects from.
        self._last_recorded = 0

    def start(self) -> None:
        """Arm the loop (called at the trace epoch)."""
        self.sim.process(self._loop())

    def drift_fraction(self, top: list[int]) -> float:
        """Share of the wanted top-K the current plan does not hold."""
        if not top:
            return 0.0
        missing = sum(1 for fid in top if fid not in self._planned)
        return missing / len(top)

    def migration_cost_j(self, new_files: list[int]) -> float:
        """Estimated energy to copy *new_files* into the buffer tier.

        Each copy is one active data-disk read plus one active
        buffer-disk write at the file's registered size; node hardware
        is taken from the first storage node (the fleet is near-uniform
        for this purpose, and the gate only needs the right order of
        magnitude).
        """
        nodes = self.controller.nodes
        if not nodes or not new_files:
            return 0.0
        data = nodes[0].data_disks[0].spec
        buffer = nodes[0].buffer_disk.spec
        total = 0.0
        for fid in new_files:
            try:
                size = self.server.metadata.lookup(fid).size_bytes
            except KeyError:
                continue
            read_s = data.positioning_s + size / data.bandwidth_bps
            write_s = buffer.positioning_s + size / buffer.bandwidth_bps
            total += read_s * data.power_active_w + write_s * buffer.power_active_w
        return total

    def projected_savings_j(
        self, new_files: list[int], drift: float, epoch_accesses: int
    ) -> float:
        """Optimistic next-epoch savings from covering *new_files*.

        Assumes the recent access rate continues, every access lands in
        the top-K, and the drifted share of them would each have cost an
        active data-disk read that the new plan converts to a buffer
        hit.  Optimism is the point: a replan vetoed under this forecast
        cannot break even under any realistic one.
        """
        nodes = self.controller.nodes
        if not nodes or not new_files or epoch_accesses <= 0 or drift <= 0:
            return 0.0
        data = nodes[0].data_disks[0].spec
        sizes = []
        for fid in new_files:
            try:
                sizes.append(self.server.metadata.lookup(fid).size_bytes)
            except KeyError:
                continue
        if not sizes:
            return 0.0
        mean_size = sum(sizes) / len(sizes)
        read_s = data.positioning_s + mean_size / data.bandwidth_bps
        return epoch_accesses * drift * read_s * data.power_active_w

    def _loop(self) -> Generator[Event, Any, None]:
        stats = self.controller.stats
        while True:
            yield self.sim.timeout(self.config.online_replan_epoch_s)
            stats.replan_epochs += 1
            if self.estimator.recorded == 0:
                stats.replans_skipped += 1
                continue  # nothing observed yet: keep the buffers cold

            tracer = self.sim.tracer
            estimate_span = (
                tracer.begin("online.estimate", "online", estimator=stats.estimator)
                if tracer is not None
                else None
            )
            ranking = self.estimator.ranking(self.server.catalog)
            if estimate_span is not None and tracer is not None:
                tracer.end(estimate_span, observed=self.estimator.recorded)

            k = self.controller.k
            top = ranking[:k]
            drift = self.drift_fraction(top)
            stats.max_drift = max(stats.max_drift, drift)
            epoch_accesses = self.estimator.recorded - self._last_recorded
            self._last_recorded = self.estimator.recorded
            first_plan = not self._planned and bool(top)
            if not first_plan and drift < self.config.online_drift_threshold:
                stats.replans_skipped += 1
                continue

            if self.config.online_replan_cost_gate and not first_plan:
                new_files = [fid for fid in top if fid not in self._planned]
                cost = self.migration_cost_j(new_files)
                savings = self.projected_savings_j(new_files, drift, epoch_accesses)
                if cost > savings:
                    stats.replans_skipped += 1
                    stats.replans_cost_vetoed += 1
                    if tracer is not None:
                        tracer.instant(
                            "online.replan_vetoed",
                            "online",
                            drift=drift,
                            cost_j=cost,
                            projected_savings_j=savings,
                        )
                    continue

            plan = plan_prefetch(ranking, k, self.server.placement)
            for node in self.server.node_names:
                self.server.fabric.send_nowait(
                    self.server.name,
                    node,
                    PrefetchCommand(
                        file_ids=plan.files_for(node), replace=True, ack=False
                    ),
                )
            self._planned = set(top)
            stats.replans_triggered += 1
            if tracer is not None:
                tracer.instant(
                    "online.replan", "online", k=k, drift=drift
                )
