"""Drift-triggered re-prefetching (online mode's epoch loop).

The oracle prefetches once, at setup, because it already knows the
whole trace.  Online mode starts with *empty* buffer disks and learns:
every ``online_replan_epoch_s`` of simulated time the replanner

1. ranks the streaming estimator's current view over the catalog
   (traced as ``online.estimate``),
2. takes the top-K at the controller's *current* adaptive K,
3. measures drift -- the fraction of that top-K not covered by the
   plan the buffers currently hold -- and,
4. when drift reaches ``online_drift_threshold`` (or the buffers were
   never populated), pushes a replacement plan through the existing
   prefetch path: ``PrefetchCommand(replace=True)`` per node, which
   copies newly wanted files and unmarks no-longer-wanted ones
   (traced as ``online.replan``).

The drift gate is what makes this cheaper than blind periodic
re-prefetching: a stable workload converges after one or two epochs and
then stops moving data entirely.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Set, TYPE_CHECKING

from repro.core.config import EEVFSConfig
from repro.core.prefetch import plan_prefetch
from repro.core.protocol import PrefetchCommand
from repro.online.controller import OnlineController
from repro.online.estimators import OnlineEstimator
from repro.sim.engine import Simulator
from repro.sim.events import Event

if TYPE_CHECKING:
    from repro.core.server import StorageServer


class ReplanLoop:
    """Epoch-based top-K diffing against the current buffer plan."""

    def __init__(
        self,
        sim: Simulator,
        server: "StorageServer",
        estimator: OnlineEstimator,
        controller: OnlineController,
        config: EEVFSConfig,
    ) -> None:
        self.sim = sim
        self.server = server
        self.estimator = estimator
        self.controller = controller
        self.config = config
        #: Files the buffer disks were last told to hold (empty until
        #: the first replan -- online mode starts cold).
        self._planned: Set[int] = set()

    def start(self) -> None:
        """Arm the loop (called at the trace epoch)."""
        self.sim.process(self._loop())

    def drift_fraction(self, top: list[int]) -> float:
        """Share of the wanted top-K the current plan does not hold."""
        if not top:
            return 0.0
        missing = sum(1 for fid in top if fid not in self._planned)
        return missing / len(top)

    def _loop(self) -> Generator[Event, Any, None]:
        stats = self.controller.stats
        while True:
            yield self.sim.timeout(self.config.online_replan_epoch_s)
            stats.replan_epochs += 1
            if self.estimator.recorded == 0:
                stats.replans_skipped += 1
                continue  # nothing observed yet: keep the buffers cold

            tracer = self.sim.tracer
            estimate_span = (
                tracer.begin("online.estimate", "online", estimator=stats.estimator)
                if tracer is not None
                else None
            )
            ranking = self.estimator.ranking(self.server.catalog)
            if estimate_span is not None and tracer is not None:
                tracer.end(estimate_span, observed=self.estimator.recorded)

            k = self.controller.k
            top = ranking[:k]
            drift = self.drift_fraction(top)
            stats.max_drift = max(stats.max_drift, drift)
            first_plan = not self._planned and bool(top)
            if not first_plan and drift < self.config.online_drift_threshold:
                stats.replans_skipped += 1
                continue

            plan = plan_prefetch(ranking, k, self.server.placement)
            for node in self.server.node_names:
                self.server.fabric.send(
                    self.server.name,
                    node,
                    PrefetchCommand(
                        file_ids=plan.files_for(node), replace=True, ack=False
                    ),
                )
            self._planned = set(top)
            stats.replans_triggered += 1
            if tracer is not None:
                tracer.instant(
                    "online.replan", "online", k=k, drift=drift
                )
