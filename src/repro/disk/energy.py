"""Energy metering and break-even analysis for drives.

The *break-even time* is the minimum idle period for which a
spin-down/spin-up round trip saves energy at all: below it, the transition
energy exceeds what standby saves.  §II calls large break-even times the
fundamental limiter of disk power management; the prefetcher exists to
manufacture idle windows longer than it.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.disk.specs import LowSpeedProfile
from repro.disk.states import COUNTED_TRANSITIONS, DiskState, validate_transition
from repro.sim.monitor import Recorder, TimeWeightedStat


@runtime_checkable
class PowerEnvelope(Protocol):
    """The power economics every meterable device spec exposes.

    Structural: :class:`~repro.disk.specs.DiskSpec` satisfies it with
    plain dataclass fields, while an SSD spec maps the "spin"
    transitions onto DEVSLP entry/exit via properties.  Everything in
    this module -- the meter and the break-even analysis -- types
    against this surface, not against any concrete spec.
    """

    @property
    def name(self) -> str: ...

    @property
    def power_active_w(self) -> float: ...

    @property
    def power_idle_w(self) -> float: ...

    @property
    def power_standby_w(self) -> float: ...

    @property
    def spinup_s(self) -> float: ...

    @property
    def spindown_s(self) -> float: ...

    @property
    def spinup_energy_j(self) -> float: ...

    @property
    def spindown_energy_j(self) -> float: ...

    @property
    def spinup_power_w(self) -> float: ...

    @property
    def spindown_power_w(self) -> float: ...

    @property
    def low_speed(self) -> Optional[LowSpeedProfile]: ...


def standby_power_savings(spec: PowerEnvelope) -> float:
    """Watts saved per second of standby versus sitting idle."""
    return spec.power_idle_w - spec.power_standby_w


def break_even_time(spec: PowerEnvelope) -> float:
    """Idle-window length at which sleeping exactly breaks even.

    For an idle window of length ``T`` the disk can either idle
    (``E = P_idle * T``) or round-trip through standby
    (``E = E_down + E_up + P_standby * (T - t_down - t_up)``).
    Equating the two and solving for ``T``::

        T_be = (E_down + E_up - P_standby * (t_down + t_up))
               / (P_idle - P_standby)
    """
    transition_time = spec.spindown_s + spec.spinup_s
    transition_energy = spec.spindown_energy_j + spec.spinup_energy_j
    numerator = transition_energy - spec.power_standby_w * transition_time
    denominator = standby_power_savings(spec)
    t_be = numerator / denominator
    # A window shorter than the transitions themselves cannot be slept at
    # all, whatever the energies say.
    return max(t_be, transition_time)


def standby_energy_saved(spec: PowerEnvelope, idle_window_s: float) -> float:
    """Joules saved by sleeping through *idle_window_s* (can be negative)."""
    if idle_window_s < 0:
        raise ValueError(f"negative idle window: {idle_window_s!r}")
    transition_time = spec.spindown_s + spec.spinup_s
    if idle_window_s < transition_time:
        # Cannot complete the round trip inside the window; treat the whole
        # attempt as transition cost on top of what idling would have used.
        return -(spec.spindown_energy_j + spec.spinup_energy_j)
    idle_cost = spec.power_idle_w * idle_window_s
    sleep_cost = (
        spec.spindown_energy_j
        + spec.spinup_energy_j
        + spec.power_standby_w * (idle_window_s - transition_time)
    )
    return idle_cost - sleep_cost


def _state_powers(spec: PowerEnvelope) -> dict[DiskState, float]:
    """Per-state power draw of *spec*, resolved once.

    LOW_*/SHIFT_* states exist only for multi-speed specs; a
    single-speed spec's meter simply has no entry for them (and
    ``validate_transition`` keeps it out of those states anyway).
    """
    powers = {
        DiskState.ACTIVE: spec.power_active_w,
        DiskState.IDLE: spec.power_idle_w,
        DiskState.STANDBY: spec.power_standby_w,
        DiskState.SPIN_UP: spec.spinup_power_w,
        DiskState.SPIN_DOWN: spec.spindown_power_w,
        DiskState.FAILED: 0.0,
    }
    low = spec.low_speed
    if low is not None:
        powers[DiskState.LOW_ACTIVE] = low.power_active_w
        powers[DiskState.LOW_IDLE] = low.power_idle_w
        powers[DiskState.SHIFT_UP] = low.shift_power_w
        powers[DiskState.SHIFT_DOWN] = low.shift_power_w
    return powers


class EnergyMeter:
    """Per-drive energy account driven by state changes.

    Every call to :meth:`transition` validates the move against the state
    machine, accrues energy for the elapsed interval at the old state's
    power, and counts standby entries/exits (the paper's Fig. 4 metric).
    """

    def __init__(
        self,
        spec: PowerEnvelope,
        start_time: float = 0.0,
        initial_state: DiskState = DiskState.IDLE,
        record_history: bool = False,
    ) -> None:
        self.spec = spec
        self.state = initial_state
        # The spec never changes, so resolve the per-state power draw once
        # instead of recomputing it on every transition.
        self._power_w_by_state = _state_powers(spec)
        self._power = TimeWeightedStat(
            name=f"{spec.name}:power",
            time=start_time,
            level=self._power_w_by_state[initial_state],
        )
        self.transition_count = 0
        self.spinup_count = 0
        self.spindown_count = 0
        #: Speed shifts (multi-speed drives only; not in Fig. 4's metric).
        self.shift_count = 0
        self.time_in_state: dict[DiskState, float] = {s: 0.0 for s in DiskState}
        self._last_time = start_time
        self.history: Optional[Recorder] = Recorder("states") if record_history else None
        if self.history is not None:
            self.history.record(start_time, initial_state)

    def transition(self, time: float, new_state: DiskState) -> None:
        """Move to *new_state* at *time*, accruing energy for the interval."""
        validate_transition(self.state, new_state)
        self.time_in_state[self.state] += time - self._last_time
        self._power.update(time, self._power_w_by_state[new_state])
        if (self.state, new_state) in COUNTED_TRANSITIONS:
            self.transition_count += 1
            if new_state is DiskState.SPIN_DOWN:
                self.spindown_count += 1
            else:
                self.spinup_count += 1
        if new_state in (DiskState.SHIFT_UP, DiskState.SHIFT_DOWN):
            self.shift_count += 1
        self.state = new_state
        self._last_time = time
        if self.history is not None:
            self.history.record(time, new_state)

    def energy_j(self, until: Optional[float] = None) -> float:
        """Total joules consumed from start until *until* (default: now)."""
        return self._power.integral(until)

    def finalize(self, time: float) -> None:
        """Close the account at *time* (accrue the final interval)."""
        self.time_in_state[self.state] += time - self._last_time
        self._power.update(time, self._power.level)
        self._last_time = time

    @property
    def power_w(self) -> float:
        """Instantaneous power draw."""
        return self._power.level

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<EnergyMeter {self.spec.name} state={self.state.value} "
            f"E={self.energy_j():.1f}J transitions={self.transition_count}>"
        )
