"""Disk substrate: power states, drive specifications, service and energy.

EEVFS saves energy by moving *data disks* into standby; everything it
measures (joules, state transitions, response-time penalties) is a function
of the disk model defined here:

* :mod:`repro.disk.states` -- the power-state machine,
* :mod:`repro.disk.specs` -- drive parameter sets (a catalog mirroring the
  paper's Table I testbed drives),
* :mod:`repro.disk.service` -- request service-time model
  (seek + rotation + transfer),
* :mod:`repro.disk.energy` -- energy metering and break-even analysis,
* :mod:`repro.disk.drive` -- :class:`SimDisk`, the simulated drive process.
"""

from repro.disk.drive import DiskRequest, RequestKind, SimDisk
from repro.disk.energy import break_even_time, EnergyMeter, standby_power_savings
from repro.disk.service import ServiceTimeModel
from repro.disk.specs import (
    ATA_80GB_TYPE1,
    ATA_80GB_TYPE2,
    DISK_CATALOG,
    DiskSpec,
    SATA_120GB_SERVER,
)
from repro.disk.states import DiskState, LEGAL_TRANSITIONS, validate_transition

__all__ = [
    "ATA_80GB_TYPE1",
    "ATA_80GB_TYPE2",
    "DISK_CATALOG",
    "DiskRequest",
    "DiskSpec",
    "DiskState",
    "EnergyMeter",
    "LEGAL_TRANSITIONS",
    "RequestKind",
    "SATA_120GB_SERVER",
    "ServiceTimeModel",
    "SimDisk",
    "break_even_time",
    "standby_power_savings",
    "validate_transition",
]
