"""Request service-time model.

Service time for one request is::

    positioning (seek + rotational latency)  --  skipped for sequential I/O
    + size / bandwidth                        --  media transfer
    * (1 + jitter)                            --  optional lognormal-ish noise

Buffer disks are *log disks* (§I: "data can be written onto the log disks
in a sequential manner"), so writes to them are sequential; the node marks
those requests accordingly and they skip positioning.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.disk.specs import DiskSpec


class ServiceTimeModel:
    """Computes per-request service times for a drive.

    Parameters
    ----------
    spec:
        The drive being modelled.
    jitter:
        Relative standard deviation of multiplicative service-time noise
        (0 disables noise; the default, keeping runs bit-deterministic
        unless an experiment opts in).
    rng:
        Generator for the noise; required when ``jitter > 0``.
    """

    def __init__(
        self,
        spec: DiskSpec,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter!r}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter > 0 requires an rng")
        self.spec = spec
        self.jitter = float(jitter)
        self.rng = rng

    def service_time(self, size_bytes: float, sequential: bool = False) -> float:
        """Seconds to serve one request of *size_bytes*."""
        if size_bytes < 0:
            raise ValueError(f"negative request size: {size_bytes!r}")
        base = self.spec.transfer_time(size_bytes)
        if not sequential:
            base += self.spec.positioning_s
        if self.jitter > 0:
            assert self.rng is not None
            # Truncated-at-zero multiplicative noise keeps times positive.
            factor = max(0.0, 1.0 + self.rng.normal(0.0, self.jitter))
            base *= factor
        return base

    def throughput_bps(self, size_bytes: float, sequential: bool = False) -> float:
        """Effective throughput for requests of *size_bytes* (diagnostic)."""
        if size_bytes <= 0:
            raise ValueError(f"size must be > 0, got {size_bytes!r}")
        return size_bytes / self.service_time(size_bytes, sequential=sequential)
