"""The disk power-state machine.

The paper (and the DPM literature it builds on, [14] in its references)
models a drive with a small set of power states.  We use five:

========  =====================================================
ACTIVE    platters spinning, head servicing a request
IDLE      platters spinning, no request in service
SPIN_DOWN transitioning IDLE -> STANDBY (takes time, costs energy)
STANDBY   platters stopped; must spin up before serving
SPIN_UP   transitioning STANDBY -> IDLE (the ~2 s penalty of §VI-C)
========  =====================================================

Transitions outside :data:`LEGAL_TRANSITIONS` indicate a logic error in a
power-management policy and raise immediately rather than corrupting the
energy account.
"""

from __future__ import annotations

import enum


class DiskState(enum.Enum):
    """Power states of a simulated drive.

    The ``LOW_*`` / ``SHIFT_*`` states exist only on multi-speed (DRPM,
    [10]) drives -- a reduced-RPM operating point with its own power and
    bandwidth, reached through a speed shift rather than a full
    spin-down.
    """

    ACTIVE = "active"
    IDLE = "idle"
    SPIN_DOWN = "spin_down"
    STANDBY = "standby"
    SPIN_UP = "spin_up"
    #: Multi-speed extension: reduced-RPM operating points.
    LOW_IDLE = "low_idle"
    LOW_ACTIVE = "low_active"
    SHIFT_DOWN = "shift_down"
    SHIFT_UP = "shift_up"
    #: Terminal hardware failure (fault-injection testing).
    FAILED = "failed"

    @property
    def is_spinning(self) -> bool:
        """True while the platters rotate (rotational power draw)."""
        return self not in (DiskState.STANDBY, DiskState.SPIN_UP, DiskState.FAILED)

    @property
    def can_serve(self) -> bool:
        """True if a request could start service without a transition."""
        return self in (
            DiskState.ACTIVE,
            DiskState.IDLE,
            DiskState.LOW_IDLE,
            DiskState.LOW_ACTIVE,
        )

    @property
    def is_low_speed(self) -> bool:
        """True at the reduced-RPM operating point."""
        return self in (DiskState.LOW_IDLE, DiskState.LOW_ACTIVE)

    @property
    def is_transitioning(self) -> bool:
        """True during spin-up/-down or a speed shift."""
        return self in (
            DiskState.SPIN_UP,
            DiskState.SPIN_DOWN,
            DiskState.SHIFT_UP,
            DiskState.SHIFT_DOWN,
        )


#: Allowed state transitions.  ``ACTIVE -> SPIN_DOWN`` is deliberately
#: absent: a disk must drain to IDLE before a power policy may sleep it;
#: likewise speed shifts start from the matching idle state.
LEGAL_TRANSITIONS: dict[DiskState, frozenset[DiskState]] = {
    DiskState.ACTIVE: frozenset({DiskState.IDLE, DiskState.FAILED}),
    DiskState.IDLE: frozenset(
        {DiskState.ACTIVE, DiskState.SPIN_DOWN, DiskState.SHIFT_DOWN, DiskState.FAILED}
    ),
    DiskState.SPIN_DOWN: frozenset({DiskState.STANDBY, DiskState.FAILED}),
    DiskState.STANDBY: frozenset({DiskState.SPIN_UP, DiskState.FAILED}),
    # SPIN_UP -> STANDBY is a *failed* spin-up (fault injection): the
    # motor did not reach speed and the drive falls back to standby.
    DiskState.SPIN_UP: frozenset(
        {DiskState.IDLE, DiskState.STANDBY, DiskState.FAILED}
    ),
    DiskState.SHIFT_DOWN: frozenset({DiskState.LOW_IDLE, DiskState.FAILED}),
    DiskState.LOW_IDLE: frozenset(
        {
            DiskState.LOW_ACTIVE,
            DiskState.SHIFT_UP,
            DiskState.SPIN_DOWN,
            DiskState.FAILED,
        }
    ),
    DiskState.LOW_ACTIVE: frozenset({DiskState.LOW_IDLE, DiskState.FAILED}),
    DiskState.SHIFT_UP: frozenset({DiskState.IDLE, DiskState.FAILED}),
    # FAILED -> STANDBY is a *repair*: the drive (or its controller) is
    # replaced/restarted by the fault-injection layer and comes back spun
    # down.  Outside repro.faults the state remains terminal in practice.
    DiskState.FAILED: frozenset({DiskState.STANDBY}),
}


class IllegalTransition(RuntimeError):
    """Raised when a policy attempts a transition the hardware cannot do."""

    def __init__(self, source: DiskState, target: DiskState) -> None:
        super().__init__(f"illegal disk state transition {source.value} -> {target.value}")
        self.source = source
        self.target = target


def validate_transition(source: DiskState, target: DiskState) -> None:
    """Raise :class:`IllegalTransition` unless ``source -> target`` is legal."""
    if target not in LEGAL_TRANSITIONS[source]:
        raise IllegalTransition(source, target)


#: Transitions counted by the paper's "number of power state transitions"
#: metric (Fig. 4): entering and leaving standby, i.e. each spin-down and
#: each spin-up counts as one.
COUNTED_TRANSITIONS: frozenset[tuple[DiskState, DiskState]] = frozenset(
    {
        (DiskState.IDLE, DiskState.SPIN_DOWN),
        (DiskState.STANDBY, DiskState.SPIN_UP),
    }
)
