"""Drive parameter sets.

The testbed in the paper's Table I uses three drive configurations:

* storage server: 120 GB SATA, 100 MB/s,
* type-1 storage node: 80 GB ATA/133, 58 MB/s,
* type-2 storage node: 80 GB ATA/133, 34 MB/s.

Table I gives no power figures, but §VI-C states spin-ups "average around
2 sec" and §V-B fixes the disk idle threshold at 5 s.  The power numbers
below are representative of early-2000s 7200 RPM desktop ATA drives (the
class the testbed used) and are chosen so the break-even time lands just
above the paper's 5 s idle threshold -- the regime the paper's policy
implicitly assumes (sleeping at the threshold is worthwhile).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class LowSpeedProfile:
    """The reduced-RPM operating point of a multi-speed (DRPM) drive."""

    bandwidth_bps: float
    power_active_w: float
    power_idle_w: float
    #: Duration / energy of one speed shift (either direction).
    shift_s: float
    shift_energy_j: float

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("low-speed bandwidth must be > 0")
        if not 0 < self.power_idle_w <= self.power_active_w:
            raise ValueError("low-speed powers must satisfy 0 < idle <= active")
        if self.shift_s < 0 or self.shift_energy_j < 0:
            raise ValueError("shift cost must be >= 0")

    @property
    def shift_power_w(self) -> float:
        """Mean power draw during a speed shift."""
        return self.shift_energy_j / self.shift_s if self.shift_s else 0.0


@dataclass(frozen=True)
class DiskSpec:
    """Immutable physical description of one drive model.

    All times in seconds, powers in watts, energies in joules.
    """

    name: str
    capacity_bytes: int
    #: Sustained sequential transfer rate, bytes/second.
    bandwidth_bps: float
    #: Average seek time for a random access.
    avg_seek_s: float
    #: Average rotational latency (half a revolution).
    avg_rotation_s: float
    #: Power while transferring data.
    power_active_w: float
    #: Power while spinning idle.
    power_idle_w: float
    #: Power in standby (spun down).
    power_standby_w: float
    #: Duration / total energy of a spin-up (STANDBY -> IDLE).
    spinup_s: float
    spinup_energy_j: float
    #: Duration / total energy of a spin-down (IDLE -> STANDBY).
    spindown_s: float
    spindown_energy_j: float
    #: Rated start/stop (contact start-stop or load/unload) cycles --
    #: the §VI-B reliability budget that frequent transitions consume.
    rated_start_stop_cycles: int = 50_000
    #: Multi-speed (DRPM) capability; None for ordinary drives.
    low_speed: "LowSpeedProfile | None" = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.bandwidth_bps <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        for attr in ("avg_seek_s", "avg_rotation_s", "spinup_s", "spindown_s"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{self.name}: {attr} must be non-negative")
        if not (self.power_standby_w < self.power_idle_w <= self.power_active_w):
            raise ValueError(
                f"{self.name}: power ordering must be standby < idle <= active"
            )
        if self.spinup_energy_j < self.power_standby_w * self.spinup_s:
            raise ValueError(f"{self.name}: spin-up energy below standby floor")
        if self.rated_start_stop_cycles <= 0:
            raise ValueError(f"{self.name}: rated_start_stop_cycles must be > 0")
        if self.low_speed is not None:
            if self.low_speed.bandwidth_bps >= self.bandwidth_bps:
                raise ValueError(f"{self.name}: low speed must be slower")
            if self.low_speed.power_idle_w >= self.power_idle_w:
                raise ValueError(f"{self.name}: low speed must draw less power")
            if self.low_speed.power_idle_w <= self.power_standby_w:
                raise ValueError(f"{self.name}: low-speed idle above standby")

    @property
    def is_multi_speed(self) -> bool:
        """Whether the drive supports a reduced-RPM operating point."""
        return self.low_speed is not None

    # -- derived quantities ----------------------------------------------------

    @property
    def spinup_power_w(self) -> float:
        """Mean power draw during a spin-up."""
        return self.spinup_energy_j / self.spinup_s if self.spinup_s else 0.0

    @property
    def spindown_power_w(self) -> float:
        """Mean power draw during a spin-down."""
        return self.spindown_energy_j / self.spindown_s if self.spindown_s else 0.0

    @property
    def positioning_s(self) -> float:
        """Mean positioning overhead (seek + rotational latency)."""
        return self.avg_seek_s + self.avg_rotation_s

    def transfer_time(self, size_bytes: float) -> float:
        """Media transfer time for *size_bytes* (no positioning)."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes!r}")
        return size_bytes / self.bandwidth_bps

    def with_overrides(self, **kwargs: Any) -> "DiskSpec":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)


#: Type-1 storage node drive (Table I: ATA/133, 80 GB, 58 MB/s).
#: Break-even time: (30 + 5.5 - 1.0*3.0) / (7.5 - 1.0) = 5.0 s, exactly the
#: paper's disk idle threshold.
ATA_80GB_TYPE1 = DiskSpec(
    name="ata133-80g-type1",
    capacity_bytes=80 * GB,
    bandwidth_bps=58 * MB,
    avg_seek_s=0.0085,
    avg_rotation_s=0.0042,  # 7200 RPM -> 4.17 ms average
    power_active_w=10.5,
    power_idle_w=7.5,
    power_standby_w=1.0,
    spinup_s=2.0,  # §VI-C: "average around 2 sec"
    spinup_energy_j=30.0,
    spindown_s=1.0,
    spindown_energy_j=5.5,
)

#: Type-2 storage node drive (Table I: ATA/133, 80 GB, 34 MB/s).
ATA_80GB_TYPE2 = DiskSpec(
    name="ata133-80g-type2",
    capacity_bytes=80 * GB,
    bandwidth_bps=34 * MB,
    avg_seek_s=0.0095,
    avg_rotation_s=0.0056,  # 5400 RPM class
    power_active_w=10.0,
    power_idle_w=7.0,
    power_standby_w=1.0,
    spinup_s=2.2,
    spinup_energy_j=32.0,
    spindown_s=1.0,
    spindown_energy_j=5.0,
)

#: Storage-server drive (Table I: SATA, 120 GB, 100 MB/s).
SATA_120GB_SERVER = DiskSpec(
    name="sata-120g-server",
    capacity_bytes=120 * GB,
    bandwidth_bps=100 * MB,
    avg_seek_s=0.0080,
    avg_rotation_s=0.0042,
    power_active_w=10.5,
    power_idle_w=7.0,
    power_standby_w=1.5,
    spinup_s=1.8,
    spinup_energy_j=24.0,
    spindown_s=1.0,
    spindown_energy_j=4.5,
)

#: A 2.5-inch laptop-class drive, for the §II "replace high-performance
#: disks with new energy-efficient disks" alternative ([20], [21]).  Far
#: lower power at far lower bandwidth; small break-even time.
LOWPOWER_25IN_160GB = DiskSpec(
    name="lowpower-2.5in-160g",
    capacity_bytes=160 * GB,
    bandwidth_bps=30 * MB,
    avg_seek_s=0.012,
    avg_rotation_s=0.0056,  # 5400 RPM
    power_active_w=3.5,
    power_idle_w=1.6,
    power_standby_w=0.4,
    spinup_s=1.5,
    spinup_energy_j=6.0,
    spindown_s=0.5,
    spindown_energy_j=1.0,
    rated_start_stop_cycles=300_000,  # load/unload-rated mobile drive
)

#: A DRPM-style multi-speed drive ([10]): the type-1 drive with a
#: 4200-RPM-class operating point.  At low speed it draws roughly half
#: the idle power at roughly half the bandwidth; one speed shift takes
#: ~1 s -- far cheaper than the 2 s spin-up + 30 J of a standby round
#: trip, which is the whole DRPM argument against large break-even times.
MULTISPEED_80GB = ATA_80GB_TYPE1.with_overrides(
    name="drpm-80g-multispeed",
    low_speed=LowSpeedProfile(
        bandwidth_bps=30 * MB,
        power_active_w=6.0,
        power_idle_w=4.0,
        shift_s=1.0,
        shift_energy_j=9.0,
    ),
)

#: Name -> spec lookup for configuration files and the CLI.
DISK_CATALOG: Dict[str, DiskSpec] = {
    spec.name: spec
    for spec in (
        ATA_80GB_TYPE1,
        ATA_80GB_TYPE2,
        SATA_120GB_SERVER,
        LOWPOWER_25IN_160GB,
        MULTISPEED_80GB,
    )
}
