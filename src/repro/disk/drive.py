"""The simulated drive: queue, state machine, and energy account.

A :class:`SimDisk` is a process on the event engine.  Requests submitted
with :meth:`SimDisk.submit` are served FIFO; if the disk is in standby a
spin-up (costing :attr:`DiskSpec.spinup_s`, ~2 s for the testbed drives)
precedes service -- this is the entire response-time penalty mechanism the
paper analyses in §VI-C.

Power-management entry points used by the EEVFS storage node:

* :meth:`request_sleep` -- begin a spin-down if (and only if) the disk is
  idle with nothing in flight; returns whether it did.
* :meth:`wake` -- begin a spin-up (used by predictive wake-up so a disk is
  active again before its next predicted access).
* ``auto_sleep_after`` -- optional built-in idle timer (the fallback §IV-C
  describes for operation without application hints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import enum
import itertools
from typing import Any, Generator, Optional, TYPE_CHECKING
import warnings

from repro.disk.energy import EnergyMeter
from repro.disk.service import ServiceTimeModel
from repro.disk.specs import DiskSpec
from repro.disk.states import DiskState
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.monitor import TallyStat
from repro.sim.process import Interrupt
from repro.sim.resources import PriorityStore, Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.obs.tracer import Span

_request_ids = itertools.count()


class DiskFailureError(RuntimeError):
    """Raised through a request's ``done`` event when its drive fails."""

    def __init__(self, disk_name: str) -> None:
        super().__init__(f"disk {disk_name} has failed")
        self.disk_name = disk_name


class RequestKind(enum.Enum):
    """I/O direction of a disk request."""

    READ = "read"
    WRITE = "write"


#: Request priorities (lower serves first): client-facing demand I/O
#: beats background prefetch copies, which beat destage write-back.
PRIORITY_DEMAND = 0
PRIORITY_PREFETCH = 1
PRIORITY_BACKGROUND = 2


@dataclass
class DiskRequest:
    """One I/O request against a single drive."""

    size_bytes: int
    kind: RequestKind = RequestKind.READ
    #: Sequential requests (log-disk appends) skip positioning overhead.
    sequential: bool = False
    #: Queue priority: lower serves first (see PRIORITY_* constants).
    priority: int = PRIORITY_DEMAND
    #: Opaque caller tag (file id, trace index, ...).
    tag: object = None
    issued_at: float = 0.0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Succeeds (with the request) when service completes.
    done: Optional[Event] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative request size: {self.size_bytes!r}")


class SimDisk:
    """A drive attached to the simulation.

    Parameters
    ----------
    sim:
        The simulator this drive lives in.
    spec:
        Physical drive parameters.
    name:
        Identifier used in reports (e.g. ``"node3/data1"``).
    service_model:
        Service-time model; defaults to a noise-free model over *spec*.
    auto_sleep_after:
        If set, an internal idle timer spins the disk down after this many
        seconds of complete inactivity (the paper's *disk idle threshold*).
    record_history:
        Keep a full ``(time, state)`` trace for debugging/plots.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: DiskSpec,
        name: str = "disk",
        service_model: Optional[ServiceTimeModel] = None,
        auto_sleep_after: Optional[float] = None,
        idle_action: str = "standby",
        second_stage_after: Optional[float] = None,
        spinup_jitter: float = 0.0,
        rng: Optional["np.random.Generator"] = None,
        record_history: bool = False,
    ) -> None:
        if auto_sleep_after is not None and auto_sleep_after < 0:
            raise ValueError(f"auto_sleep_after must be >= 0, got {auto_sleep_after!r}")
        if idle_action not in ("standby", "low_speed"):
            raise ValueError(f"unknown idle_action: {idle_action!r}")
        if idle_action == "low_speed" and spec.low_speed is None:
            raise ValueError(f"{name}: idle_action='low_speed' needs a multi-speed spec")
        if second_stage_after is not None:
            if idle_action != "low_speed":
                raise ValueError("second_stage_after requires idle_action='low_speed'")
            if second_stage_after < 0:
                raise ValueError("second_stage_after must be >= 0")
        if spinup_jitter < 0:
            raise ValueError(f"spinup_jitter must be >= 0, got {spinup_jitter!r}")
        if spinup_jitter > 0 and rng is None:
            raise ValueError("spinup_jitter > 0 requires an rng")
        self.sim = sim
        self.spec = spec
        self.name = name
        self.service = service_model or ServiceTimeModel(spec)
        #: Low-speed service model (multi-speed drives only).
        self.service_low = (
            ServiceTimeModel(
                spec.with_overrides(
                    bandwidth_bps=spec.low_speed.bandwidth_bps, low_speed=None
                )
            )
            if spec.low_speed is not None
            else None
        )
        self.auto_sleep_after = auto_sleep_after
        #: What the idle watchdog does on expiry: full standby (the
        #: paper) or a DRPM-style shift to low speed.
        self.idle_action = idle_action
        #: Two-stage hybrid: after this much further idleness at low
        #: speed, the drive proceeds to standby (None = stay low).
        self.second_stage_after = second_stage_after
        #: Relative sd of actual spin-up duration around the nominal value
        #: -- mechanical variability a predictive wake-up cannot see.
        self.spinup_jitter = float(spinup_jitter)
        self._rng = rng
        self.meter = EnergyMeter(
            spec,
            start_time=sim.now,
            initial_state=DiskState.IDLE,
            record_history=record_history,
        )
        self.queue: Store = PriorityStore(sim, priority_key=lambda r: r.priority)
        #: Requests submitted but not yet completed (queued + in service).
        self.inflight = 0
        self.requests_served = 0
        self.bytes_served = 0
        #: Transient degradation: service times are multiplied by this
        #: factor (1.0 = healthy; set via :meth:`set_slowdown`).
        self.slowdown = 1.0
        #: Injected spin-up failures still pending, and the back-off the
        #: drive observes after each failed attempt before it may retry.
        self._flaky_spinups = 0
        self._flaky_backoff_s = 0.0
        self.spinup_failures = 0
        self.service_times = TallyStat(name=f"{name}:service")
        #: Re-armed event that fires when a spin-up/down completes.
        self._transition_done: Event = sim.event()
        #: Open spinup/spindown span (observability only; None otherwise).
        self._transition_span: Optional["Span"] = None
        self._idle_started: Event = sim.event()
        self._watchdog_timing = False
        self._server = sim.process(self._server_loop())
        self._watchdog = (
            sim.process(self._idle_watchdog()) if auto_sleep_after is not None else None
        )

    # -- public API --------------------------------------------------------------

    @property
    def state(self) -> DiskState:
        """Current power state."""
        return self.meter.state

    @property
    def is_sleeping(self) -> bool:
        """True when the disk cannot serve without a spin-up."""
        return self.state in (DiskState.STANDBY, DiskState.SPIN_DOWN)

    def submit(
        self,
        size_bytes: int,
        kind: RequestKind = RequestKind.READ,
        sequential: bool = False,
        tag: object = None,
        priority: int = PRIORITY_DEMAND,
    ) -> DiskRequest:
        """Enqueue a request; its ``done`` event fires on completion (or
        fails with :class:`DiskFailureError` on a dead drive).

        Lower ``priority`` serves first: demand I/O overtakes queued
        prefetch copies and destage write-back."""
        request = DiskRequest(
            size_bytes=size_bytes,
            kind=kind,
            sequential=sequential,
            priority=priority,
            tag=tag,
            issued_at=self.sim.now,
            done=self.sim.event(),
        )
        if self.state is DiskState.FAILED:
            request.done.fail(DiskFailureError(self.name))
            return request
        self.inflight += 1
        if self._watchdog_timing and self._watchdog is not None:
            self._watchdog.interrupt("activity")
        self.queue.put(request)
        if self.state is DiskState.STANDBY:
            self.wake()
        return request

    def request_sleep(self) -> bool:
        """Spin down if idle with nothing in flight.  Returns True if begun.

        Legal from full-speed IDLE and (on multi-speed drives) from
        LOW_IDLE -- the second stage of a hybrid DRPM policy.
        """
        if self.state not in (DiskState.IDLE, DiskState.LOW_IDLE) or self.inflight > 0:
            return False
        self._begin_transition(DiskState.SPIN_DOWN, DiskState.STANDBY, self.spec.spindown_s)
        return True

    def wake(self) -> bool:
        """Spin up from standby.  Returns True if a spin-up began."""
        if self.state is not DiskState.STANDBY:
            return False
        duration = self.spec.spinup_s
        if self.spinup_jitter > 0:
            assert self._rng is not None  # enforced in __init__
            factor = 1.0 + self._rng.normal(0.0, self.spinup_jitter)
            duration *= min(2.0, max(0.5, factor))
        if self._flaky_spinups > 0:
            self._flaky_spinups -= 1
            self.spinup_failures += 1
            self.sim.process(self._failed_spinup(duration))
            return True
        self._begin_transition(DiskState.SPIN_UP, DiskState.IDLE, duration)
        return True

    def _failed_spinup(self, duration: float) -> Generator[Event, Any, None]:
        """An injected spin-up failure: the motor spends the full spin-up
        (time and energy) but falls back to STANDBY, observes the injected
        back-off, then releases waiters so the next attempt retries."""
        self._set_state(DiskState.SPIN_UP)
        tracer = self.sim.tracer
        if tracer is not None:
            self._transition_span = tracer.begin(
                "spinup", self.name, injected_failure=True
            )
        self._transition_done = self.sim.event()
        done = self._transition_done
        yield self.sim.timeout(duration)
        if self.state is DiskState.FAILED:
            # The drive died mid-attempt; fail() settled `done`.
            self._end_transition_span(ok=False)
            return
        self._set_state(DiskState.STANDBY)
        self._end_transition_span(ok=False)
        if self._flaky_backoff_s > 0:
            yield self.sim.timeout(self._flaky_backoff_s)
        if done.triggered:
            return  # the drive failed during the back-off
        done.succeed()
        if self.inflight > 0 and self.state is DiskState.STANDBY:
            self.wake()

    def shift_down(self) -> bool:
        """Drop to the low-RPM operating point (multi-speed drives).

        Allowed only from IDLE with nothing in flight.  Returns True if
        the shift began; raises if the drive is not multi-speed.
        """
        if self.spec.low_speed is None:
            raise RuntimeError(f"{self.name} ({self.spec.name}) is not multi-speed")
        if self.state is not DiskState.IDLE or self.inflight > 0:
            return False
        profile = self.spec.low_speed
        self._begin_transition(DiskState.SHIFT_DOWN, DiskState.LOW_IDLE, profile.shift_s)
        return True

    def shift_up(self) -> bool:
        """Return to the full-RPM operating point.  True if begun."""
        if self.spec.low_speed is None:
            raise RuntimeError(f"{self.name} ({self.spec.name}) is not multi-speed")
        if self.state is not DiskState.LOW_IDLE:
            return False
        profile = self.spec.low_speed
        self._begin_transition(DiskState.SHIFT_UP, DiskState.IDLE, profile.shift_s)
        return True

    @property
    def shift_count(self) -> int:
        """Speed shifts performed (multi-speed drives)."""
        return self.meter.shift_count

    def fail(self) -> None:
        """Inject a permanent hardware failure.

        The drive stops drawing power; every queued request fails with
        :class:`DiskFailureError` immediately, as does every later
        submit.  A request already in service completes (the head was
        mid-transfer; simulation granularity).  Idempotent.
        """
        if self.state is DiskState.FAILED:
            return
        self._set_state(DiskState.FAILED)
        for request in self.queue.drain():
            self.inflight -= 1
            assert request.done is not None
            request.done.fail(DiskFailureError(self.name))
        # Unblock a server loop parked on the transition (including a
        # flaky spin-up's back-off window, when the state has already
        # returned to STANDBY); defused so an unwatched transition event
        # cannot crash the simulation.
        pending = self._transition_done
        if not pending.triggered:
            pending.fail(DiskFailureError(self.name))
            pending.defuse()

    def fail_at(self, time_s: float) -> None:
        """Schedule :meth:`fail` at an absolute simulation time.

        .. deprecated::
            Use a :class:`repro.faults.FaultSchedule` and pass it to
            :class:`~repro.core.filesystem.EEVFSCluster` instead -- it
            records the event in the run's fault log, supports repair,
            and keeps fault times reproducible.  This hook will be
            removed one release after the faults subsystem landed.
        """
        warnings.warn(
            "SimDisk.fail_at is deprecated; declare failures on a "
            "repro.faults.FaultSchedule instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if time_s < self.sim.now:
            raise ValueError(f"cannot fail in the past ({time_s!r} < {self.sim.now!r})")

        def killer() -> Generator[Event, Any, None]:
            yield self.sim.timeout(time_s - self.sim.now)
            self.fail()

        self.sim.process(killer())

    def repair(self) -> None:
        """Undo a :meth:`fail`: the drive (or its controller) is replaced
        and comes back spun down, with a fresh (empty) queue.

        Data is modelled as intact after a repair -- the fault layer
        treats a failure window as a controller/power outage, not a
        media loss (media loss is what replication recovers from at the
        cluster level).  No-op on a healthy drive.
        """
        if self.state is not DiskState.FAILED:
            return
        self._set_state(DiskState.STANDBY)
        # The idle watchdog may have died waiting out the failed
        # transition; re-arm it so power management resumes.
        if self.auto_sleep_after is not None and (
            self._watchdog is None or self._watchdog.triggered
        ):
            self._watchdog = self.sim.process(self._idle_watchdog())

    def set_idle_threshold(self, seconds: float) -> None:
        """Retarget the built-in idle timer (adaptive power management).

        Takes effect from the *next* idle period: a countdown already
        running keeps its original deadline, so an unchanged threshold
        is behaviourally invisible.  Only valid on drives built with an
        idle timer -- the online controller must not conjure power
        management on disks whose mode never armed one.
        """
        if self.auto_sleep_after is None:
            raise ValueError(f"{self.name}: no idle timer to adjust")
        if seconds < 0:
            raise ValueError(f"idle threshold must be >= 0, got {seconds!r}")
        self.auto_sleep_after = float(seconds)

    def set_slowdown(self, factor: float) -> None:
        """Degrade (or restore) the drive: service times scale by *factor*.

        Models a transiently slow disk (vibration, media retries,
        controller resets); 1.0 restores nominal service.
        """
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1.0, got {factor!r}")
        self.slowdown = float(factor)

    def inject_spinup_failures(self, count: int, backoff_s: float = 1.0) -> None:
        """Arm the next *count* spin-up attempts to fail.

        Each failed attempt costs the full spin-up time and energy, drops
        the drive back to STANDBY, and waits *backoff_s* before waiters
        may retry -- the retry/back-off loop a real driver performs.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count!r}")
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s!r}")
        self._flaky_spinups = count
        self._flaky_backoff_s = float(backoff_s)

    def finalize(self) -> None:
        """Close the energy account at the current time."""
        self.meter.finalize(self.sim.now)

    def energy_j(self) -> float:
        """Joules consumed so far (including the current open interval)."""
        return self.meter.energy_j(until=self.sim.now)

    @property
    def transition_count(self) -> int:
        """Counted power-state transitions (spin-downs + spin-ups)."""
        return self.meter.transition_count

    @property
    def utilization(self) -> float:
        """Fraction of elapsed time spent in ACTIVE."""
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        active = self.meter.time_in_state[DiskState.ACTIVE]
        if self.state is DiskState.ACTIVE:
            active += elapsed - self.meter._last_time
        return active / elapsed

    # -- internals ----------------------------------------------------------------

    def _set_state(self, new_state: DiskState) -> None:
        if new_state is self.state:
            return
        self.meter.transition(self.sim.now, new_state)

    def _begin_transition(
        self, via: DiskState, target: DiskState, duration: float
    ) -> None:
        self._set_state(via)
        tracer = self.sim.tracer
        if tracer is not None:
            if via is DiskState.SPIN_UP:
                span_kind = "spinup"
            elif via is DiskState.SPIN_DOWN:
                span_kind = "spindown"
            else:
                span_kind = "disk.shift"
            self._transition_span = tracer.begin(
                span_kind, self.name, target=target.value
            )
        self._transition_done = self.sim.event()
        self.sim.process(self._finish_transition(target, duration))

    def _end_transition_span(self, **tags: object) -> None:
        """Close the open transition span, if tracing is attached."""
        span = self._transition_span
        if span is not None:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.end(span, **tags)
            self._transition_span = None

    def _finish_transition(
        self, target: DiskState, duration: float
    ) -> Generator[Event, Any, None]:
        done = self._transition_done
        yield self.sim.timeout(duration)
        if self.state is DiskState.FAILED:
            # The drive died mid-transition; fail() settled `done`.
            self._end_transition_span(ok=False)
            return
        self._set_state(target)
        self._end_transition_span()
        done.succeed()
        # A request may have landed while we were spinning down; chain the
        # wake-up immediately so it is not stranded until the next submit.
        if target is DiskState.STANDBY and self.inflight > 0:
            self.wake()

    def _server_loop(self) -> Generator[Event, Any, None]:
        sim = self.sim
        while True:
            request: DiskRequest = yield self.queue.get()
            # Wait out any transition in progress, then leave standby.
            try:
                while not self.state.can_serve:
                    if self.state is DiskState.FAILED:
                        raise DiskFailureError(self.name)
                    if self.state is DiskState.STANDBY:
                        self.wake()
                    yield self._transition_done
            except DiskFailureError as failure:
                # The drive died while this request waited; fail it and
                # go back to the queue (a repair may revive the drive).
                self.inflight -= 1
                assert request.done is not None
                request.done.fail(failure)
                continue
            low = self.state.is_low_speed
            self._set_state(DiskState.LOW_ACTIVE if low else DiskState.ACTIVE)
            model = self.service_low if low else self.service
            assert model is not None  # low implies a multi-speed spec
            duration = self.slowdown * model.service_time(
                request.size_bytes, sequential=request.sequential
            )
            tracer = sim.tracer
            span: Optional["Span"] = None
            if tracer is not None:
                span = tracer.begin(
                    "disk.service",
                    self.name,
                    io=request.kind.value,
                    bytes=request.size_bytes,
                )
            yield sim.timeout(duration)
            if span is not None and tracer is not None:
                tracer.end(span)
            self.inflight -= 1
            self.requests_served += 1
            self.bytes_served += request.size_bytes
            self.service_times.record(duration)
            if self.state is not DiskState.FAILED and self.queue.size == 0:
                self._set_state(DiskState.LOW_IDLE if low else DiskState.IDLE)
                if self.inflight == 0:
                    self._signal_idle()
            assert request.done is not None
            request.done.succeed(request)

    def _signal_idle(self) -> None:
        event, self._idle_started = self._idle_started, self.sim.event()
        event.succeed()

    def _idle_watchdog(self) -> Generator[Event, Any, None]:
        """Built-in idle timer (policy fallback without application hints)."""
        sim = self.sim
        while True:
            # Re-read each idle period: set_idle_threshold may retune the
            # timer mid-run (the online controller's knob).
            auto_sleep_after = self.auto_sleep_after
            assert auto_sleep_after is not None  # watchdog only started when set
            if self.state is DiskState.IDLE and self.inflight == 0:
                self._watchdog_timing = True
                try:
                    yield sim.timeout(auto_sleep_after)
                    if self.idle_action == "low_speed":
                        self.shift_down()
                    else:
                        self.request_sleep()
                except Interrupt:
                    pass  # activity arrived; wait for the next idle period
                finally:
                    self._watchdog_timing = False
            elif (
                self.second_stage_after is not None
                and self.state is DiskState.LOW_IDLE
                and self.inflight == 0
            ):
                self._watchdog_timing = True
                try:
                    yield sim.timeout(self.second_stage_after)
                    self.request_sleep()
                except Interrupt:
                    pass
                finally:
                    self._watchdog_timing = False
            elif self.state.is_transitioning and self.second_stage_after is not None:
                # Re-check once the shift/spin completes (two-stage mode
                # must arm its LOW_IDLE timer without waiting for I/O).
                try:
                    yield self._transition_done
                except DiskFailureError:
                    return
            else:
                yield self._idle_started

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SimDisk {self.name} {self.state.value} inflight={self.inflight} "
            f"served={self.requests_served}>"
        )
