"""Energy-aware replication for the EEVFS reproduction.

Replica placement across storage nodes, degraded reads that fail over to
surviving holders (or buffer-disk copies), and background re-replication
that restores factor *k* after failures while respecting disk power
state:

* :mod:`repro.replication.policy` -- placement policies
  (none / buffer-only, k-way round-robin, popularity-spread),
* :mod:`repro.replication.repair` -- :class:`ReplicationManager`, the
  server-side repair loop.
"""

from repro.replication.policy import holder_counts, plan_replicas, REPLICATION_POLICIES
from repro.replication.repair import ReplicationManager

__all__ = [
    "REPLICATION_POLICIES",
    "ReplicationManager",
    "holder_counts",
    "plan_replicas",
]
