"""Background re-replication: restore factor *k* after failures.

The :class:`ReplicationManager` runs next to the storage server.  Every
check interval it scans the server's metadata for files with fewer than
``replication_factor`` *live* holders and dispatches repairs: for each
deficit file it picks a surviving source holder and a live target node
(least-loaded, not yet holding the file) and sends the target a
:class:`~repro.core.protocol.RepairCommand`.  The target pulls the bytes
from the source over the fabric and answers the server with
:class:`~repro.core.protocol.RepairComplete`, at which point the replica
is registered.

Energy awareness lives where the disks live (§IV-D): the *source* node
serves the pull from its buffer disk when the file is prefetched (the
buffer disk never sleeps, so no spindle wakes), and the *target* node
writes the new replica to an already-awake data disk when one exists.
The server only throttles: at most ``rereplication_batch`` repairs per
interval, so recovery I/O trickles instead of stampeding every sleeping
disk awake at once.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, TYPE_CHECKING

from repro.core.protocol import RepairCommand, RepairComplete
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.server import StorageServer


class ReplicationManager:
    """The server-side repair loop of the replication subsystem."""

    def __init__(self, server: "StorageServer") -> None:
        self.server = server
        self.sim = server.sim
        self.config = server.config
        self.factor = server.config.replication_factor
        #: file_id -> dispatch time of repairs awaiting completion.
        self._inflight: Dict[int, float] = {}
        self.repairs_started = 0
        self.repairs_completed = 0
        self.repairs_failed = 0
        self.bytes_recopied = 0
        self._proc = self.sim.process(self._loop())

    # -- the repair loop -------------------------------------------------------

    def _loop(self) -> Generator[Event, Any, None]:
        interval = self.config.rereplication_check_interval_s
        timeout = 10.0 * interval
        while True:
            yield self.sim.timeout(interval)
            now = self.sim.now
            # A repair whose node died mid-copy never completes; give the
            # slot back so the file can be retried elsewhere.
            for file_id, started in list(self._inflight.items()):
                if now - started > timeout:
                    del self._inflight[file_id]
            budget = self.config.rereplication_batch - len(self._inflight)
            if budget <= 0:
                continue
            for file_id in self.server.metadata.under_replicated(self.factor):
                if budget <= 0:
                    break
                if file_id in self._inflight:
                    continue
                if self._dispatch(file_id):
                    budget -= 1

    def _dispatch(self, file_id: int) -> bool:
        """Send one RepairCommand for *file_id*; False if impossible now."""
        metadata = self.server.metadata
        sources = metadata.live_holders(file_id)
        if not sources:
            return False  # nothing survives to copy from
        target = self._choose_target(file_id)
        if target is None:
            return False  # no live node has room for another holder
        entry = metadata.lookup(file_id)
        self._inflight[file_id] = self.sim.now
        self.repairs_started += 1
        self.server.fabric.send_nowait(
            self.server.name,
            target,
            RepairCommand(
                file_id=file_id, size_bytes=entry.size_bytes, source=sources[0]
            ),
        )
        return True

    def _choose_target(self, file_id: int) -> Optional[str]:
        """Least-loaded live node that does not already hold the file."""
        metadata = self.server.metadata
        holders = set(metadata.holders(file_id))
        candidates: List[str] = [
            node
            for node in self.server.node_names
            if metadata.is_live(node) and node not in holders
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda node: (metadata.bytes_on(node), node))

    # -- completions (called from the server's message loop) -------------------

    def on_complete(self, payload: RepairComplete) -> None:
        self._inflight.pop(payload.file_id, None)
        if not payload.ok:
            self.repairs_failed += 1
            return
        metadata = self.server.metadata
        if payload.node not in metadata.holders(payload.file_id):
            metadata.add_replica(payload.file_id, payload.node)
            if self.server.metaplane is not None:
                # The plane's shards learn of the new holder through
                # their replicated log (queued while leaderless).
                self.server.metaplane.propose_add_replica(
                    payload.file_id, payload.node
                )
        self.repairs_completed += 1
        self.bytes_recopied += metadata.lookup(payload.file_id).size_bytes
