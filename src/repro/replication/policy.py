"""Replica placement policies.

EEVFS proper keeps exactly one cross-node copy of every file (plus the
buffer-disk copies prefetching makes of the hot set).  The replication
extension adds *k-way* placement on top of the §III-B primary layout:

* ``"none"`` / ``"buffer"`` -- no cross-node replicas.  ``"buffer"``
  names the paper's accidental-replica story explicitly: reads of
  prefetched files survive their data disk because the buffer disk holds
  a copy; nothing else is protected.
* ``"round_robin"`` -- replica *j* of a file lives on the next *j*-th
  node after its primary (mod the node count).  Deterministic, balanced
  when primaries are balanced.
* ``"popularity"`` -- replicas are dealt round-robin *in descending
  popularity order* over all nodes (skipping holders), the same trick
  §III-B uses for primaries: hot files' replicas spread evenly, so a
  failover under skewed load does not concentrate on one node.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

#: Accepted values of ``EEVFSConfig.replication_policy``.
REPLICATION_POLICIES = ("none", "buffer", "round_robin", "popularity")


def plan_replicas(
    ranking: Sequence[int],
    placement: Mapping[int, str],
    nodes: Sequence[str],
    factor: int,
    policy: str = "round_robin",
) -> Dict[int, Tuple[str, ...]]:
    """Choose ``factor - 1`` replica nodes for every file.

    Parameters
    ----------
    ranking:
        File ids in descending popularity (the placement order).
    placement:
        file -> primary node (from :mod:`repro.core.placement`).
    nodes:
        Storage node names, in server order.
    factor:
        Total copies wanted per file (primary included); 1 = no replicas.
    policy:
        One of :data:`REPLICATION_POLICIES`.

    Returns file -> tuple of replica nodes (primary excluded).  Every
    replica set is duplicate-free and never contains the primary.
    """
    if policy not in REPLICATION_POLICIES:
        raise ValueError(f"unknown replication policy: {policy!r}")
    if factor < 1:
        raise ValueError(f"replication factor must be >= 1, got {factor!r}")
    if factor > len(nodes):
        raise ValueError(
            f"replication factor {factor} exceeds node count {len(nodes)}"
        )
    if factor == 1 or policy in ("none", "buffer"):
        return {file_id: () for file_id in ranking}

    node_index = {name: i for i, name in enumerate(nodes)}
    replicas: Dict[int, Tuple[str, ...]] = {}
    if policy == "round_robin":
        for file_id in ranking:
            primary = placement[file_id]
            start = node_index[primary]
            replicas[file_id] = tuple(
                nodes[(start + offset) % len(nodes)]
                for offset in range(1, factor)
            )
    else:  # popularity
        cursor = 0
        for file_id in ranking:
            holders = [placement[file_id]]
            chosen = []
            while len(chosen) < factor - 1:
                candidate = nodes[cursor % len(nodes)]
                cursor += 1
                if candidate not in holders:
                    holders.append(candidate)
                    chosen.append(candidate)
            replicas[file_id] = tuple(chosen)
    return replicas


def holder_counts(
    placement: Mapping[int, str],
    replicas: Mapping[int, Tuple[str, ...]],
) -> Dict[str, int]:
    """Files held per node (primaries + replicas) -- balance diagnostics."""
    counts: Dict[str, int] = {}
    for file_id, primary in placement.items():
        counts[primary] = counts.get(primary, 0) + 1
        for node in replicas.get(file_id, ()):
            counts[node] = counts.get(node, 0) + 1
    return counts
