"""Point-to-point links (NICs).

A :class:`Link` serialises transmissions: one frame at a time at the link
bandwidth, plus a fixed propagation/stack latency per transfer.  A
connection-setup cost approximates the TCP handshakes the prototype's
storage server performs when contacting storage nodes (Fig. 2, step 1).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.monitor import TallyStat
from repro.sim.resources import Resource

#: Table I NIC rates, in *bytes* per second (the table quotes megabits).
GIGABIT_ETHERNET_BPS = 1000e6 / 8
FAST_ETHERNET_BPS = 100e6 / 8

#: Per-transfer fixed latency: switch + kernel network stack, one way.
DEFAULT_LATENCY_S = 200e-6

#: One TCP connect round trip on a quiet LAN.
DEFAULT_CONNECT_S = 500e-6


class Link:
    """A serialising transmission resource with fixed per-transfer latency."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        latency_s: float = DEFAULT_LATENCY_S,
        name: str = "link",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth_bps!r}")
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s!r}")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self._channel = Resource(sim, capacity=1)
        self.bytes_sent = 0
        self.transfers = TallyStat(name=f"{name}:transfer_s")

    def transmission_time(self, size_bytes: float) -> float:
        """Pure wire time for *size_bytes* (no queueing)."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes!r}")
        return self.latency_s + size_bytes / self.bandwidth_bps

    def transfer(self, size_bytes: int, rate_cap_bps: Optional[float] = None) -> Event:
        """Occupy the link for one transfer; returns a completion event.

        ``rate_cap_bps`` lowers the effective rate (used by the fabric when
        the far end's NIC is slower than this link).
        """
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes!r}")
        rate = self.bandwidth_bps
        if rate_cap_bps is not None:
            if rate_cap_bps <= 0:
                raise ValueError(f"rate cap must be > 0, got {rate_cap_bps!r}")
            rate = min(rate, rate_cap_bps)
        duration = self.latency_s + size_bytes / rate
        return self.sim.process(self._do_transfer(size_bytes, duration))

    def _do_transfer(self, size_bytes: int, duration: float):
        with self._channel.request() as slot:
            yield slot
            start = self.sim.now
            yield self.sim.timeout(duration)
            self.bytes_sent += size_bytes
            self.transfers.record(self.sim.now - start)

    @property
    def queue_length(self) -> int:
        """Transfers waiting for the wire (diagnostic)."""
        return self._channel.queue_length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name} {self.bandwidth_bps:.3g} B/s>"
