"""Network messages.

A :class:`Message` is what travels the fabric: an opaque payload plus the
number of bytes it occupies on the wire.  Protocol semantics (the EEVFS
request/response/control vocabulary of Fig. 2) live in ``repro.core``;
the network layer only cares about size and addressing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import itertools
from typing import Any

#: Wire size charged for small control messages (request forwarding,
#: metadata replies, hints).  1 KiB comfortably covers the EEVFS control
#: structures while remaining negligible next to file payloads.
CONTROL_MESSAGE_BYTES = 1024

_message_ids = itertools.count()


@dataclass
class Message:
    """One unit of data in flight between two endpoints."""

    src: str
    dst: str
    payload: Any
    size_bytes: int = CONTROL_MESSAGE_BYTES
    #: Simulated send time, filled in by the fabric.
    sent_at: float = 0.0
    #: Simulated delivery time, filled in by the fabric.
    delivered_at: float = 0.0
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes!r}")
        if not self.src or not self.dst:
            raise ValueError("messages need non-empty src and dst addresses")

    @property
    def latency(self) -> float:
        """Delivery minus send time (meaningful after delivery)."""
        return self.delivered_at - self.sent_at
