"""Network substrate: NICs, links and a switching fabric.

The EEVFS testbed (Table I) connects one storage server, eight storage
nodes and the clients over Ethernet -- gigabit for the server and type-1
nodes, 100 Mb/s for type-2 nodes.  This package models that fabric:

* :mod:`repro.net.message`  -- typed messages with payload and wire size,
* :mod:`repro.net.link`     -- a serialising point-to-point link (a NIC),
* :mod:`repro.net.fabric`   -- endpoints joined through a non-blocking
  switch; a transfer is limited by the slower of the two endpoint NICs.
"""

from repro.net.fabric import Endpoint, Fabric
from repro.net.link import FAST_ETHERNET_BPS, GIGABIT_ETHERNET_BPS, Link
from repro.net.message import Message

__all__ = [
    "Endpoint",
    "FAST_ETHERNET_BPS",
    "Fabric",
    "GIGABIT_ETHERNET_BPS",
    "Link",
    "Message",
]
