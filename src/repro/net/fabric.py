"""The switching fabric: endpoints joined by a non-blocking switch.

Each endpoint owns a full-duplex NIC (independent transmit and receive
links).  A transfer occupies the sender's TX channel and the receiver's RX
channel simultaneously and proceeds at the slower of the two rates -- so a
gigabit server feeding a 100 Mb/s type-2 node is throttled to 100 Mb/s,
exactly as on the testbed.  The switch itself is non-blocking (no shared
backplane contention), which matches small dedicated cluster switches.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from repro.net.link import DEFAULT_CONNECT_S, DEFAULT_LATENCY_S, Link
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.events import Event, URGENT
from repro.sim.resources import Store


class _Delivery:
    """Continuation state machine for one message transfer.

    The flat-dispatch replacement for the generator ``Fabric._deliver``:
    each stage is a plain bound method subscribed directly to the event
    it waits on (or scheduled via ``call_later``), so a delivery costs no
    Process object, no kick-off/completion events and no generator frame.
    Every stage runs in exactly the event slot where the generator's
    ``_resume`` would have run -- the two dispatch modes produce
    byte-identical metrics (pinned by tests/core/test_dispatch_identity).

    ``done`` is the completion event handed back to ``Fabric.send``
    callers; ``Fabric.send_nowait`` passes ``None`` and skips the final
    completion event entirely (fire-and-forget sends are the common
    case on the request path).
    """

    __slots__ = (
        "fabric",
        "sender",
        "receiver",
        "message",
        "done",
        "span",
        "rx_hold",
        "remaining",
        "tx_slot",
        "rx_slot",
    )

    def __init__(
        self,
        fabric: "Fabric",
        sender: "Endpoint",
        receiver: "Endpoint",
        message: Message,
        done: Optional[Event],
    ) -> None:
        self.fabric = fabric
        self.sender = sender
        self.receiver = receiver
        self.message = message
        self.done = done
        # Kicked off URGENT at the current time -- the same schedule slot
        # a Process kick-off event would occupy.
        fabric.sim.call_soon(self._start, priority=URGENT)

    def _start(self, _value: Any) -> None:
        fabric = self.fabric
        message = self.message
        sender = self.sender
        receiver = self.receiver
        message.sent_at = fabric.sim.now
        tracer = fabric.sim.tracer
        self.span = None
        if tracer is not None:
            request_id = getattr(message.payload, "request_id", None)
            self.span = tracer.begin(
                "net.transfer",
                f"net:{sender.name}",
                parent=(
                    None if request_id is None else tracer.request_span(request_id)
                ),
                src=message.src,
                dst=message.dst,
                bytes=message.size_bytes,
                payload=type(message.payload).__name__,
            )
        rate = min(sender.tx.bandwidth_bps, receiver.rx.bandwidth_bps)
        duration = fabric.latency_s + message.size_bytes / rate
        # See Fabric._deliver for the TX/RX occupancy rationale; the hold
        # times are identical in both dispatch modes.
        self.rx_hold = message.size_bytes / receiver.rx.bandwidth_bps
        self.remaining = duration - self.rx_hold
        self.tx_slot = sender.tx._channel.request()
        assert self.tx_slot.callbacks is not None
        self.tx_slot.callbacks.append(self._tx_granted)

    def _tx_granted(self, _event: Event) -> None:
        self.rx_slot = self.receiver.rx._channel.request()
        assert self.rx_slot.callbacks is not None
        self.rx_slot.callbacks.append(self._rx_granted)

    def _rx_granted(self, _event: Event) -> None:
        self.fabric.sim.call_later(self.rx_hold, self._rx_done)

    def _rx_done(self, _value: Any) -> None:
        receiver = self.receiver
        receiver.rx.bytes_sent += self.message.size_bytes
        receiver.rx._channel.release(self.rx_slot)
        if self.remaining > 0:
            self.fabric.sim.call_later(self.remaining, self._tx_done)
        else:
            self._tx_done(None)

    def _tx_done(self, _value: Any) -> None:
        fabric = self.fabric
        message = self.message
        self.sender.tx.bytes_sent += message.size_bytes
        fabric.messages_sent += 1
        fabric.bytes_sent += message.size_bytes
        self.sender.tx._channel.release(self.tx_slot)
        message.delivered_at = fabric.sim.now
        tracer = fabric.sim.tracer
        if fabric._partitioned and (
            message.src in fabric._partitioned or message.dst in fabric._partitioned
        ):
            # Partition check happens at delivery time so a cut that
            # lands mid-flight still eats the message.
            fabric.messages_dropped += 1
            if self.span is not None and tracer is not None:
                tracer.end(self.span, dropped=True)
            if self.done is not None:
                self.done.succeed(None)
            return
        if self.span is not None and tracer is not None:
            tracer.end(self.span)
        self.receiver.messages_received += 1
        put = self.receiver.inbox.put(message)
        if self.done is not None:
            assert put.callbacks is not None
            put.callbacks.append(self._delivered)

    def _delivered(self, _event: Event) -> None:
        assert self.done is not None
        self.done.succeed(self.message)


class Endpoint:
    """A named host on the fabric with a full-duplex NIC and an inbox."""

    def __init__(self, sim: Simulator, name: str, bandwidth_bps: float, latency_s: float) -> None:
        self.sim = sim
        self.name = name
        self.tx = Link(sim, bandwidth_bps, latency_s=latency_s, name=f"{name}:tx")
        self.rx = Link(sim, bandwidth_bps, latency_s=0.0, name=f"{name}:rx")
        self.inbox: Store = Store(sim)
        self.messages_received = 0

    @property
    def bandwidth_bps(self) -> float:
        """NIC line rate."""
        return self.tx.bandwidth_bps

    def receive(self):
        """Event yielding the next inbound :class:`Message` (FIFO)."""
        return self.inbox.get()

    def receive_matching(self, predicate):
        """Event yielding the next inbound message satisfying *predicate*."""
        return self.inbox.get(filter=predicate)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Endpoint {self.name} {self.bandwidth_bps:.3g} B/s>"


class Fabric:
    """A set of endpoints and the send primitive connecting them.

    Deliveries run as flat :class:`_Delivery` continuations by default;
    flip :attr:`use_continuations` to fall back to the legacy generator
    ``_deliver`` path (kept for the old-vs-new byte-identity test).
    """

    #: Dispatch mode for message deliveries.  Class-level so tests can
    #: flip a single switch; both modes produce byte-identical metrics.
    use_continuations: bool = True

    def __init__(
        self,
        sim: Simulator,
        latency_s: float = DEFAULT_LATENCY_S,
        connect_s: float = DEFAULT_CONNECT_S,
    ) -> None:
        if latency_s < 0 or connect_s < 0:
            raise ValueError("latencies must be >= 0")
        self.sim = sim
        self.latency_s = float(latency_s)
        self.connect_s = float(connect_s)
        self._endpoints: Dict[str, Endpoint] = {}
        #: Endpoints currently cut off by a network partition fault: any
        #: message to or from one of these is dropped at delivery time
        #: (the bytes still burn link time -- the network does not know a
        #: frame is doomed until it fails to arrive).
        self._partitioned: Set[str] = set()
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0

    # -- topology ---------------------------------------------------------------

    def add_endpoint(self, name: str, bandwidth_bps: float) -> Endpoint:
        """Attach a host; names must be unique."""
        if name in self._endpoints:
            raise ValueError(f"duplicate endpoint name: {name!r}")
        endpoint = Endpoint(self.sim, name, bandwidth_bps, self.latency_s)
        self._endpoints[name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        """Look up an endpoint by name."""
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(f"unknown endpoint: {name!r}") from None

    def endpoints(self) -> list[str]:
        """All endpoint names, sorted."""
        return sorted(self._endpoints)

    def set_partitioned(self, name: str, isolated: bool) -> None:
        """Cut *name* off from (or rejoin it to) the switching fabric."""
        self.endpoint(name)  # fail fast on typos
        if isolated:
            self._partitioned.add(name)
        else:
            self._partitioned.discard(name)

    def is_partitioned(self, name: str) -> bool:
        return name in self._partitioned

    # -- data plane ---------------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        size_bytes: Optional[int] = None,
    ) -> Event:
        """Transfer *payload* from *src* to *dst*.

        Returns an event that succeeds (with the :class:`Message`) once the
        message has been appended to the destination inbox.
        """
        sender = self.endpoint(src)
        receiver = self.endpoint(dst)
        if src == dst:
            raise ValueError(f"endpoint {src!r} cannot send to itself")
        message = (
            Message(src=src, dst=dst, payload=payload)
            if size_bytes is None
            else Message(src=src, dst=dst, payload=payload, size_bytes=size_bytes)
        )
        if not self.use_continuations:
            return self.sim.process(self._deliver(sender, receiver, message))
        done = Event(self.sim)
        _Delivery(self, sender, receiver, message, done)
        return done

    def send_nowait(
        self,
        src: str,
        dst: str,
        payload: Any,
        size_bytes: Optional[int] = None,
    ) -> None:
        """Fire-and-forget :meth:`send`: no completion event is created.

        Most protocol sends never wait on delivery (the reply arriving in
        the inbox *is* the acknowledgement), so skipping the completion
        event avoids one Event allocation plus one scheduled slot per
        message.  Dropping an event from the schedule only renumbers the
        sequence counter -- relative order of all surviving events is
        unchanged, so metrics are identical to ``send`` with the result
        ignored.
        """
        sender = self.endpoint(src)
        receiver = self.endpoint(dst)
        if src == dst:
            raise ValueError(f"endpoint {src!r} cannot send to itself")
        message = (
            Message(src=src, dst=dst, payload=payload)
            if size_bytes is None
            else Message(src=src, dst=dst, payload=payload, size_bytes=size_bytes)
        )
        if not self.use_continuations:
            self.sim.process(self._deliver(sender, receiver, message))
            return
        _Delivery(self, sender, receiver, message, None)

    def connect(self, src: str, dst: str) -> Event:
        """Pay one connection-setup round trip (TCP handshake)."""
        self.endpoint(src)
        self.endpoint(dst)
        return self.sim.timeout(self.connect_s)

    def _deliver(self, sender: Endpoint, receiver: Endpoint, message: Message):
        message.sent_at = self.sim.now
        tracer = self.sim.tracer
        span = None
        if tracer is not None:
            request_id = getattr(message.payload, "request_id", None)
            span = tracer.begin(
                "net.transfer",
                f"net:{sender.name}",
                parent=(
                    None if request_id is None else tracer.request_span(request_id)
                ),
                src=message.src,
                dst=message.dst,
                bytes=message.size_bytes,
                payload=type(message.payload).__name__,
            )
        rate = min(sender.tx.bandwidth_bps, receiver.rx.bandwidth_bps)
        duration = self.latency_s + message.size_bytes / rate
        # The sender's TX is busy for the whole (possibly rate-capped)
        # transfer; the receiver's RX is only occupied for the time the
        # bytes take at *its* line rate -- a fast receiver ingesting from a
        # slow sender interleaves other flows meanwhile, as real switched
        # Ethernet does.
        rx_hold = message.size_bytes / receiver.rx.bandwidth_bps
        with sender.tx._channel.request() as tx_slot:
            yield tx_slot
            with receiver.rx._channel.request() as rx_slot:
                yield rx_slot
                yield self.sim.timeout(rx_hold)
                receiver.rx.bytes_sent += message.size_bytes
            remaining = duration - rx_hold
            if remaining > 0:
                yield self.sim.timeout(remaining)
            sender.tx.bytes_sent += message.size_bytes
            self.messages_sent += 1
            self.bytes_sent += message.size_bytes
        message.delivered_at = self.sim.now
        if self._partitioned and (
            message.src in self._partitioned or message.dst in self._partitioned
        ):
            # Partition check happens at delivery time so a cut that
            # lands mid-flight still eats the message.
            self.messages_dropped += 1
            if span is not None and tracer is not None:
                tracer.end(span, dropped=True)
            return None
        if span is not None and tracer is not None:
            tracer.end(span)
        receiver.messages_received += 1
        yield receiver.inbox.put(message)
        return message

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Fabric endpoints={len(self._endpoints)} sent={self.messages_sent}>"
