"""One-call reproduction validation: every shape claim, pass/fail.

``python -m repro.cli verify`` runs the Table-II sweeps plus the
Berkeley trace and checks the paper's qualitative claims (who wins, how
curves bend).  The same checks back the benchmark assertions; here they
are a library so CI or a skeptical reader can get a verdict in one
command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.figures import figure6
from repro.experiments.sweeps import run_all_sweeps, SweepSet
from repro.metrics.report import format_table


@dataclass(frozen=True)
class CheckResult:
    """One shape claim's verdict."""

    claim: str
    source: str
    passed: bool
    detail: str


def _series(points, getter):
    return [getter(p.comparison) for p in points]


def validate_reproduction(
    n_requests: int = 1000,
    seed: int = 0,
    sweeps: Optional[SweepSet] = None,
) -> List[CheckResult]:
    """Run (or reuse) the evaluation corpus and check every claim."""
    sweeps = sweeps if sweeps is not None else run_all_sweeps(
        n_requests=n_requests, seed=seed
    )
    checks: List[CheckResult] = []

    def check(claim: str, source: str, passed: bool, detail: str) -> None:
        checks.append(
            CheckResult(claim=claim, source=source, passed=bool(passed), detail=detail)
        )

    # --- Fig. 3 ---------------------------------------------------------------
    size = sweeps["data_size"]
    savings = _series(size, lambda c: c.energy_savings_pct)
    check(
        "PF saves energy at every data size",
        "Fig. 3(a)",
        all(s > 5.0 for s in savings),
        f"savings {['%.1f' % s for s in savings]} %",
    )
    energy = _series(size, lambda c: c.pf.energy_j)
    check(
        "50 MB saturates: absolute energy jumps",
        "Fig. 3(a) / §VI-A",
        energy[3] > 1.3 * energy[1],
        f"E(50MB)/E(10MB) = {energy[3] / energy[1]:.2f}",
    )

    mu = sweeps["mu"]
    mu_savings = _series(mu, lambda c: c.energy_savings_pct)
    mu_hits = _series(mu, lambda c: c.pf.buffer_hit_rate)
    check(
        "MU <= 100 saturates savings (all requests prefetched)",
        "Fig. 3(b) / §VI-A",
        all(h == 1.0 for h in mu_hits[:3])
        and max(mu_savings[:3]) - min(mu_savings[:3]) < 1.0
        and mu_savings[3] == min(mu_savings),
        f"savings {['%.1f' % s for s in mu_savings]} %",
    )

    ia = sweeps["inter_arrival"]
    ia_savings = _series(ia, lambda c: c.energy_savings_pct)
    check(
        "savings grow with inter-arrival delay, worst at 0 ms",
        "Fig. 3(c)",
        ia_savings[0] == min(ia_savings) and ia_savings[3] >= ia_savings[1],
        f"savings {['%.1f' % s for s in ia_savings]} %",
    )

    k = sweeps["prefetch_count"]
    k_savings = _series(k, lambda c: c.energy_savings_pct)
    check(
        "savings grow monotonically with K; K=10 nearly useless",
        "Fig. 3(d)",
        k_savings == sorted(k_savings) and k_savings[0] < 8.0,
        f"savings {['%.1f' % s for s in k_savings]} %",
    )

    # --- Fig. 4 ---------------------------------------------------------------
    k_transitions = _series(k, lambda c: c.pf.transitions)
    check(
        "K=10 is the transition worst case; falls with K",
        "Fig. 4(d)",
        k_transitions == sorted(k_transitions, reverse=True),
        f"transitions {k_transitions}",
    )
    mu_transitions = _series(mu, lambda c: c.pf.transitions)
    check(
        "MU <= 100: one sleep per disk, never woken",
        "Fig. 4(b)",
        mu_transitions[0] == mu_transitions[1] == mu_transitions[2]
        and mu_transitions[3] > 2 * mu_transitions[0],
        f"transitions {mu_transitions}",
    )
    check(
        "NPF never transitions",
        "§V-B (NPF definition)",
        all(
            p.comparison.npf.transitions == 0
            for points in sweeps.results.values()
            for p in points
        ),
        "all NPF runs at 0",
    )

    # --- Fig. 5 ---------------------------------------------------------------
    size_penalties = _series(size, lambda c: c.response_penalty_pct)
    check(
        "response penalty shrinks as data size grows",
        "Fig. 5(a)",
        size_penalties[2] < size_penalties[0] / 3,
        f"penalties {['%.1f' % p for p in size_penalties]} %",
    )
    mu_penalties = _series(mu, lambda c: c.response_penalty_pct)
    check(
        "no response penalty in the all-hit regime",
        "Fig. 5(b) / §VI-C",
        all(abs(p) < 2.0 for p in mu_penalties[:3]),
        f"penalties {['%.2f' % p for p in mu_penalties]} %",
    )
    k_penalties = _series(k, lambda c: c.response_penalty_pct)
    check(
        "penalty falls with K, mirroring transitions",
        "Fig. 5(d) / §VI-C",
        k_penalties == sorted(k_penalties, reverse=True),
        f"penalties {['%.1f' % p for p in k_penalties]} %",
    )

    # --- Fig. 6 ---------------------------------------------------------------
    fig6 = figure6(n_requests=n_requests, seed=seed)
    check(
        "web trace: all disks sleep for the whole run, savings near max",
        "Fig. 6 / §VI-D",
        fig6.comparison.pf.buffer_hit_rate == 1.0
        and fig6.comparison.pf.transitions == 16
        and 10.0 <= fig6.savings_pct <= 20.0,
        f"savings {fig6.savings_pct:.1f} %, transitions "
        f"{fig6.comparison.pf.transitions}",
    )

    return checks


def render_validation(checks: List[CheckResult]) -> str:
    """Printable verdict table plus a summary line."""
    rows = [
        ["PASS" if c.passed else "FAIL", c.source, c.claim, c.detail]
        for c in checks
    ]
    table = format_table(
        ["verdict", "source", "claim", "measured"],
        rows,
        title="Reproduction shape checks",
    )
    passed = sum(1 for c in checks if c.passed)
    return f"{table}\n\n{passed}/{len(checks)} checks passed"


def all_passed(checks: List[CheckResult]) -> bool:
    return all(c.passed for c in checks)
