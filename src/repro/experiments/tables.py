"""Regeneration of the paper's Tables I and II from the live config.

These are configuration tables, not measurements -- regenerating them
verifies that the simulated testbed actually carries the published
parameters (a reproduction smoke test in its own right).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import ClusterSpec, default_cluster, PARAMETER_GRID
from repro.disk.specs import MB, SATA_120GB_SERVER
from repro.metrics.report import format_table


def table1(cluster: ClusterSpec = None) -> str:
    """Table I: configuration of the testbed."""
    cluster = cluster if cluster is not None else default_cluster()
    # Group storage nodes by (disk spec, nic) into "types".
    types: Dict[tuple, List[str]] = {}
    for node in cluster.storage_nodes:
        key = (node.disk_spec.name, node.nic_bps, node.base_power_w)
        types.setdefault(key, []).append(node.name)

    headers = ["Parameter", "Storage Server Node"]
    type_specs = []
    for i, (_key, names) in enumerate(sorted(types.items()), 1):
        headers.append(f"Storage Node Type {i} (x{len(names)})")
        node = next(n for n in cluster.storage_nodes if n.name == names[0])
        type_specs.append(node)

    def disk_row(label, server_value, per_type):
        return [label, server_value, *per_type]

    rows = [
        disk_row(
            "Network Interconnect (Mb/s)",
            f"{cluster.server_nic_bps * 8 / 1e6:.0f}",
            [f"{n.nic_bps * 8 / 1e6:.0f}" for n in type_specs],
        ),
        disk_row(
            "Disk Type",
            SATA_120GB_SERVER.name,
            [n.disk_spec.name for n in type_specs],
        ),
        disk_row(
            "Disk Capacity (GB)",
            f"{SATA_120GB_SERVER.capacity_bytes / (1024 ** 3):.0f}",
            [f"{n.disk_spec.capacity_bytes / (1024 ** 3):.0f}" for n in type_specs],
        ),
        disk_row(
            "Disk Bandwidth (MB/s)",
            f"{SATA_120GB_SERVER.bandwidth_bps / MB:.0f}",
            [f"{n.disk_spec.bandwidth_bps / MB:.0f}" for n in type_specs],
        ),
        disk_row(
            "Data Disks per Node",
            "-",
            [str(n.n_data_disks) for n in type_specs],
        ),
        disk_row(
            "Node Base Power (W)",
            f"{cluster.server_base_power_w:.0f}",
            [f"{n.base_power_w:.0f}" for n in type_specs],
        ),
    ]
    return format_table(
        headers, rows, title="Table I: Configuration of the Testbed"
    )


def table2() -> str:
    """Table II: system and workload parameters."""
    rows = [
        ["Data Size (MB)", ", ".join(map(str, PARAMETER_GRID["data_size_mb"]))],
        ["File Popularity Rate - The MU Value", ", ".join(map(str, PARAMETER_GRID["mu"]))],
        ["Inter-arrival Delay (ms)", ", ".join(map(str, PARAMETER_GRID["inter_arrival_ms"]))],
        ["Number of Files to Prefetch", ", ".join(map(str, PARAMETER_GRID["prefetch_files"]))],
        ["Disk Idle Threshold (sec)", ", ".join(map(str, PARAMETER_GRID["idle_threshold_s"]))],
    ]
    return format_table(
        ["Parameter", "Values"], rows, title="Table II: System and Workload Parameters"
    )
