"""Crossover finders: where does prefetching stop (or start) paying?

The figures show trends at four grid points; operators want the
boundaries -- the lightest prefetch depth that clears a savings target,
or the load level at which PF stops winning.  These helpers search the
parameter space (integer bisection over monotone responses) instead of
eyeballing a chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import ClusterSpec, EEVFSConfig
from repro.experiments.runner import run_pair
from repro.traces.model import Trace
from repro.traces.synthetic import generate_synthetic_trace, SyntheticWorkload


@dataclass(frozen=True)
class CrossoverResult:
    """Outcome of a boundary search."""

    parameter: str
    value: Optional[float]
    target: float
    evaluations: Dict[float, float]

    @property
    def found(self) -> bool:
        return self.value is not None


def _savings_for_k(trace: Trace, k: int, cluster, seed: int) -> float:
    comparison = run_pair(
        trace, config=EEVFSConfig(prefetch_files=k), cluster=cluster, seed=seed
    )
    return comparison.energy_savings_pct


def find_min_effective_k(
    target_savings_pct: float,
    trace: Optional[Trace] = None,
    n_requests: int = 600,
    k_max: int = 200,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
) -> CrossoverResult:
    """Smallest prefetch depth K whose savings reach the target.

    Savings are monotone in K (Fig. 3d), so integer bisection applies.
    Returns ``value=None`` if even ``k_max`` misses the target.
    """
    if target_savings_pct <= 0:
        raise ValueError("target must be > 0")
    trace = (
        trace
        if trace is not None
        else generate_synthetic_trace(
            SyntheticWorkload(n_requests=n_requests), rng=np.random.default_rng(1)
        )
    )
    evaluations: Dict[float, float] = {}

    def savings(k: int) -> float:
        if k not in evaluations:
            evaluations[k] = _savings_for_k(trace, k, cluster, seed)
        return evaluations[k]

    if savings(k_max) < target_savings_pct:
        return CrossoverResult(
            parameter="prefetch_files",
            value=None,
            target=target_savings_pct,
            evaluations=evaluations,
        )
    lo, hi = 0, k_max  # savings(lo)=0 < target <= savings(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if savings(mid) >= target_savings_pct:
            hi = mid
        else:
            lo = mid
    return CrossoverResult(
        parameter="prefetch_files",
        value=float(hi),
        target=target_savings_pct,
        evaluations=evaluations,
    )


def find_savings_floor_inter_arrival(
    min_savings_pct: float = 0.0,
    n_requests: int = 600,
    ia_grid_ms: tuple = (0, 50, 100, 200, 350, 500, 700),
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
) -> CrossoverResult:
    """Lightest load (smallest inter-arrival) at which PF still clears
    the savings floor.

    Savings degrade as the load compresses (Fig. 3c); this scans the
    grid from heavy to light and returns the first inter-arrival delay
    whose savings meet the floor.
    """
    evaluations: Dict[float, float] = {}
    for ia_ms in ia_grid_ms:
        workload = SyntheticWorkload(
            n_requests=n_requests, inter_arrival_s=ia_ms / 1000.0
        )
        trace = generate_synthetic_trace(workload, rng=np.random.default_rng(1))
        comparison = run_pair(trace, config=EEVFSConfig(), cluster=cluster, seed=seed)
        evaluations[ia_ms] = comparison.energy_savings_pct
        if comparison.energy_savings_pct >= min_savings_pct:
            return CrossoverResult(
                parameter="inter_arrival_ms",
                value=float(ia_ms),
                target=min_savings_pct,
                evaluations=evaluations,
            )
    return CrossoverResult(
        parameter="inter_arrival_ms",
        value=None,
        target=min_savings_pct,
        evaluations=evaluations,
    )
