"""Ablation studies beyond the paper's figures.

These exercise the design choices DESIGN.md calls out:

* **Idle threshold** -- the paper fixes 5 s (Table II); what do other
  thresholds do to savings and transitions?
* **Application hints** -- §IV-C claims EEVFS "can operate without the
  application hints"; this quantifies what the hints buy.
* **Disks per node** -- §VII conjectures savings "will increase as more
  disks are added to each EEVFS storage node".
* **Window predictor** -- sequence vs time (DESIGN.md §5.4).
* **Replay discipline** -- open vs paced vs closed client behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import default_cluster, EEVFSConfig
from repro.core.filesystem import EEVFSCluster
from repro.metrics.comparison import PairedComparison
from repro.metrics.report import format_series
from repro.parallel import JobSpec, run_jobs, TraceSpec
from repro.traces.cache import cached_trace
from repro.traces.model import Trace
from repro.traces.synthetic import SyntheticWorkload


def _default_trace(n_requests: int, trace_seed: int = 1) -> Trace:
    return cached_trace(
        "synthetic", SyntheticWorkload(n_requests=n_requests), trace_seed
    )


def _default_trace_spec(n_requests: int, trace_seed: int = 1) -> TraceSpec:
    return TraceSpec(
        workload=SyntheticWorkload(n_requests=n_requests), seed=trace_seed
    )


@dataclass
class AblationResult:
    """One ablation sweep: x values and the paired comparisons."""

    name: str
    x_label: str
    x_values: List[object]
    comparisons: List[PairedComparison]

    def render(self) -> str:
        return format_series(
            self.x_label,
            self.x_values,
            {
                "savings_pct": [c.energy_savings_pct for c in self.comparisons],
                "PF_transitions": [float(c.pf.transitions) for c in self.comparisons],
                "penalty_pct": [c.response_penalty_pct for c in self.comparisons],
            },
            title=f"=== Ablation: {self.name} ===",
        )


def ablate_idle_threshold(
    thresholds: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 30.0),
    n_requests: int = 1000,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> AblationResult:
    """Sweep the disk idle threshold around the paper's 5 s."""
    trace = _default_trace_spec(n_requests)
    comparisons = run_jobs(
        [
            JobSpec(
                label=f"idle_threshold={t}",
                trace=trace,
                config=EEVFSConfig(idle_threshold_s=t),
                seed=seed,
            )
            for t in thresholds
        ],
        jobs=jobs,
    )
    return AblationResult(
        name="idle threshold",
        x_label="threshold_s",
        x_values=list(thresholds),
        comparisons=comparisons,
    )


def ablate_hints(
    n_requests: int = 1000, seed: int = 0, jobs: Optional[int] = 1
) -> AblationResult:
    """Hints + wake-ahead vs pure idle timers (§IV-C's two modes)."""
    trace = _default_trace_spec(n_requests)
    comparisons = run_jobs(
        [
            JobSpec(label="hints=with", trace=trace, config=EEVFSConfig(), seed=seed),
            JobSpec(
                label="hints=without",
                trace=trace,
                config=EEVFSConfig(use_hints=False, wake_ahead=False),
                seed=seed,
            ),
        ],
        jobs=jobs,
    )
    return AblationResult(
        name="application hints",
        x_label="hints",
        x_values=["with", "without"],
        comparisons=comparisons,
    )


def ablate_disks_per_node(
    disk_counts: Sequence[int] = (1, 2, 4, 8),
    n_requests: int = 1000,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> AblationResult:
    """§VII: does adding data disks per node increase savings?"""
    trace = _default_trace_spec(n_requests)
    comparisons = run_jobs(
        [
            JobSpec(
                label=f"disks_per_node={count}",
                trace=trace,
                config=EEVFSConfig(),
                cluster=default_cluster(data_disks_per_node=count),
                seed=seed,
            )
            for count in disk_counts
        ],
        jobs=jobs,
    )
    return AblationResult(
        name="data disks per node",
        x_label="disks_per_node",
        x_values=list(disk_counts),
        comparisons=comparisons,
    )


def ablate_window_predictor(
    n_requests: int = 1000, seed: int = 0, jobs: Optional[int] = 1
) -> AblationResult:
    """Sequence (drift-robust) vs time (timestamp-trusting) prediction."""
    trace = _default_trace_spec(n_requests)
    comparisons = run_jobs(
        [
            JobSpec(
                label=f"window_predictor={predictor}",
                trace=trace,
                config=EEVFSConfig(window_predictor=predictor),
                seed=seed,
            )
            for predictor in ("sequence", "time")
        ],
        jobs=jobs,
    )
    return AblationResult(
        name="window predictor",
        x_label="predictor",
        x_values=["sequence", "time"],
        comparisons=comparisons,
    )


def ablate_striping(
    widths: Sequence[int] = (1, 2, 4),
    n_requests: int = 1000,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> AblationResult:
    """§VII future work: striping vs energy savings.

    Uses 4 data disks per node so width-4 stripes exist; quantifies the
    performance-vs-savings tension (every miss wakes all stripe disks).
    """
    trace = _default_trace_spec(n_requests)
    cluster = default_cluster(data_disks_per_node=max(widths))
    comparisons = run_jobs(
        [
            JobSpec(
                label=f"stripe_width={w}",
                trace=trace,
                config=EEVFSConfig(stripe_width=w),
                cluster=cluster,
                seed=seed,
            )
            for w in widths
        ],
        jobs=jobs,
    )
    return AblationResult(
        name="striping (§VII)",
        x_label="stripe_width",
        x_values=list(widths),
        comparisons=comparisons,
    )


def ablate_placement_policy(
    n_requests: int = 1000,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> AblationResult:
    """Round-robin (§III-B) vs bandwidth-weighted placement.

    On the heterogeneous Table-I testbed, weighting placement by NIC rate
    routes most traffic through gigabit nodes -- a response-time win the
    paper's hardware-oblivious policy leaves on the table.
    """
    trace = _default_trace_spec(n_requests)
    comparisons = run_jobs(
        [
            JobSpec(
                label=f"placement={policy}",
                trace=trace,
                config=EEVFSConfig(placement_policy=policy),
                seed=seed,
            )
            for policy in ("round_robin", "bandwidth_weighted")
        ],
        jobs=jobs,
    )
    return AblationResult(
        name="placement policy",
        x_label="policy",
        x_values=["round_robin", "bandwidth_weighted"],
        comparisons=comparisons,
    )


def ablate_dynamic_prefetch(
    n_requests: int = 1000,
    seed: int = 0,
) -> Dict[str, object]:
    """Static vs dynamic prefetching on a drifting workload.

    Both policies get the same limited history (the trace's first 15 %);
    the dynamic policy then re-prefetches from the online log every 30 s
    over a 60 s popularity window.  Returns the three runs.
    """
    from repro.traces.nonstationary import DriftingWorkload, generate_drifting_trace

    trace = generate_drifting_trace(
        DriftingWorkload(n_requests=n_requests), rng=np.random.default_rng(3)
    )
    history = trace.head(max(1, n_requests * 15 // 100))
    npf = EEVFSCluster(config=EEVFSConfig().as_npf(), seed=seed).run(
        trace, history=history
    )
    static = EEVFSCluster(config=EEVFSConfig(), seed=seed).run(trace, history=history)
    dynamic = EEVFSCluster(
        config=EEVFSConfig(reprefetch_interval_s=30.0, popularity_window_s=60.0),
        seed=seed,
    ).run(trace, history=history)
    return {"npf": npf, "static": static, "dynamic": dynamic}


def ablate_node_scaling(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32),
    n_requests: int = 1000,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> AblationResult:
    """Scalability: does the thin storage server stay out of the way?

    §III-A: "When the number of storage nodes scales up, the storage
    server might become a performance bottleneck, we address this issue
    by simplifying the functionality of the storage server."  We scale
    the cluster while scaling the offered load with it (inter-arrival
    shrinks proportionally), so per-node load is constant; a scalable
    design keeps response time and savings flat.
    """
    specs = []
    for count in node_counts:
        half = max(1, count // 2)
        specs.append(
            JobSpec(
                label=f"nodes={count}",
                trace=TraceSpec(
                    workload=SyntheticWorkload(
                        n_requests=n_requests,
                        inter_arrival_s=0.700 * 8.0 / count,
                    ),
                    seed=1,
                ),
                config=EEVFSConfig(),
                cluster=default_cluster(n_type1=half, n_type2=count - half),
                seed=seed,
            )
        )
    comparisons = run_jobs(specs, jobs=jobs)
    return AblationResult(
        name="node scaling (constant per-node load)",
        x_label="storage_nodes",
        x_values=list(node_counts),
        comparisons=comparisons,
    )


def ablate_diurnal(
    n_requests: int = 1000,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> AblationResult:
    """Bursty (diurnal) vs constant arrivals at matched volume and span.

    Data-centre load is periodic; a policy that only works on smooth
    arrivals is useless.  Result: the look-ahead sleep policy extracts
    essentially the same savings from a 5x day/night swing as from a
    constant stream of equal volume -- window *totals*, not window
    arrangement, set the savings -- while bursts cost a little extra
    response time (queueing at the peaks).
    """
    from repro.traces.diurnal import DiurnalWorkload

    diurnal_workload = DiurnalWorkload(n_requests=n_requests)
    # Generate the diurnal trace here (cached, so a jobs=1 worker reuses
    # it) -- the constant comparator's inter-arrival is derived from it.
    diurnal_trace = cached_trace("diurnal", diurnal_workload, 4)
    mean_ia = diurnal_trace.duration_s / max(1, diurnal_trace.n_requests - 1)
    comparisons = run_jobs(
        [
            JobSpec(
                label="arrivals=diurnal",
                trace=TraceSpec(kind="diurnal", workload=diurnal_workload, seed=4),
                config=EEVFSConfig(),
                seed=seed,
            ),
            JobSpec(
                label="arrivals=constant",
                trace=TraceSpec(
                    workload=SyntheticWorkload(
                        n_requests=n_requests, inter_arrival_s=mean_ia
                    ),
                    seed=4,
                ),
                config=EEVFSConfig(),
                seed=seed,
            ),
        ],
        jobs=jobs,
    )
    return AblationResult(
        name="diurnal vs constant arrivals",
        x_label="arrival_pattern",
        x_values=["diurnal", "constant"],
        comparisons=comparisons,
    )


def ablate_replay_mode(
    modes: Sequence[str] = ("open", "paced", "closed"),
    n_requests: int = 500,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> Dict[str, PairedComparison]:
    """How the client replay discipline changes the headline numbers."""
    trace = _default_trace_spec(n_requests)
    comparisons = run_jobs(
        [
            JobSpec(
                label=f"replay_mode={mode}",
                trace=trace,
                config=EEVFSConfig(),
                seed=seed,
                replay_mode=mode,
            )
            for mode in modes
        ],
        jobs=jobs,
    )
    return dict(zip(modes, comparisons, strict=True))
