"""Ablation studies beyond the paper's figures.

These exercise the design choices DESIGN.md calls out:

* **Idle threshold** -- the paper fixes 5 s (Table II); what do other
  thresholds do to savings and transitions?
* **Application hints** -- §IV-C claims EEVFS "can operate without the
  application hints"; this quantifies what the hints buy.
* **Disks per node** -- §VII conjectures savings "will increase as more
  disks are added to each EEVFS storage node".
* **Window predictor** -- sequence vs time (DESIGN.md §5.4).
* **Replay discipline** -- open vs paced vs closed client behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import EEVFSConfig, default_cluster
from repro.core.filesystem import EEVFSCluster
from repro.experiments.runner import run_pair
from repro.metrics.comparison import PairedComparison
from repro.metrics.report import format_series
from repro.traces.model import Trace
from repro.traces.synthetic import SyntheticWorkload, generate_synthetic_trace


def _default_trace(n_requests: int, trace_seed: int = 1) -> Trace:
    return generate_synthetic_trace(
        SyntheticWorkload(n_requests=n_requests), rng=np.random.default_rng(trace_seed)
    )


@dataclass
class AblationResult:
    """One ablation sweep: x values and the paired comparisons."""

    name: str
    x_label: str
    x_values: List[object]
    comparisons: List[PairedComparison]

    def render(self) -> str:
        return format_series(
            self.x_label,
            self.x_values,
            {
                "savings_pct": [c.energy_savings_pct for c in self.comparisons],
                "PF_transitions": [float(c.pf.transitions) for c in self.comparisons],
                "penalty_pct": [c.response_penalty_pct for c in self.comparisons],
            },
            title=f"=== Ablation: {self.name} ===",
        )


def ablate_idle_threshold(
    thresholds: Sequence[float] = (1.0, 2.0, 5.0, 10.0, 30.0),
    n_requests: int = 1000,
    seed: int = 0,
) -> AblationResult:
    """Sweep the disk idle threshold around the paper's 5 s."""
    trace = _default_trace(n_requests)
    comparisons = [
        run_pair(trace, config=EEVFSConfig(idle_threshold_s=t), seed=seed)
        for t in thresholds
    ]
    return AblationResult(
        name="idle threshold",
        x_label="threshold_s",
        x_values=list(thresholds),
        comparisons=comparisons,
    )


def ablate_hints(n_requests: int = 1000, seed: int = 0) -> AblationResult:
    """Hints + wake-ahead vs pure idle timers (§IV-C's two modes)."""
    trace = _default_trace(n_requests)
    with_hints = run_pair(trace, config=EEVFSConfig(), seed=seed)
    without = run_pair(
        trace, config=EEVFSConfig(use_hints=False, wake_ahead=False), seed=seed
    )
    return AblationResult(
        name="application hints",
        x_label="hints",
        x_values=["with", "without"],
        comparisons=[with_hints, without],
    )


def ablate_disks_per_node(
    disk_counts: Sequence[int] = (1, 2, 4, 8),
    n_requests: int = 1000,
    seed: int = 0,
) -> AblationResult:
    """§VII: does adding data disks per node increase savings?"""
    trace = _default_trace(n_requests)
    comparisons = []
    for count in disk_counts:
        cluster = default_cluster(data_disks_per_node=count)
        comparisons.append(
            run_pair(trace, config=EEVFSConfig(), cluster=cluster, seed=seed)
        )
    return AblationResult(
        name="data disks per node",
        x_label="disks_per_node",
        x_values=list(disk_counts),
        comparisons=comparisons,
    )


def ablate_window_predictor(n_requests: int = 1000, seed: int = 0) -> AblationResult:
    """Sequence (drift-robust) vs time (timestamp-trusting) prediction."""
    trace = _default_trace(n_requests)
    comparisons = [
        run_pair(
            trace, config=EEVFSConfig(window_predictor=predictor), seed=seed
        )
        for predictor in ("sequence", "time")
    ]
    return AblationResult(
        name="window predictor",
        x_label="predictor",
        x_values=["sequence", "time"],
        comparisons=comparisons,
    )


def ablate_striping(
    widths: Sequence[int] = (1, 2, 4),
    n_requests: int = 1000,
    seed: int = 0,
) -> AblationResult:
    """§VII future work: striping vs energy savings.

    Uses 4 data disks per node so width-4 stripes exist; quantifies the
    performance-vs-savings tension (every miss wakes all stripe disks).
    """
    trace = _default_trace(n_requests)
    cluster = default_cluster(data_disks_per_node=max(widths))
    comparisons = [
        run_pair(
            trace, config=EEVFSConfig(stripe_width=w), cluster=cluster, seed=seed
        )
        for w in widths
    ]
    return AblationResult(
        name="striping (§VII)",
        x_label="stripe_width",
        x_values=list(widths),
        comparisons=comparisons,
    )


def ablate_placement_policy(
    n_requests: int = 1000,
    seed: int = 0,
) -> AblationResult:
    """Round-robin (§III-B) vs bandwidth-weighted placement.

    On the heterogeneous Table-I testbed, weighting placement by NIC rate
    routes most traffic through gigabit nodes -- a response-time win the
    paper's hardware-oblivious policy leaves on the table.
    """
    trace = _default_trace(n_requests)
    comparisons = [
        run_pair(trace, config=EEVFSConfig(placement_policy=policy), seed=seed)
        for policy in ("round_robin", "bandwidth_weighted")
    ]
    return AblationResult(
        name="placement policy",
        x_label="policy",
        x_values=["round_robin", "bandwidth_weighted"],
        comparisons=comparisons,
    )


def ablate_dynamic_prefetch(
    n_requests: int = 1000,
    seed: int = 0,
) -> Dict[str, object]:
    """Static vs dynamic prefetching on a drifting workload.

    Both policies get the same limited history (the trace's first 15 %);
    the dynamic policy then re-prefetches from the online log every 30 s
    over a 60 s popularity window.  Returns the three runs.
    """
    from repro.traces.nonstationary import DriftingWorkload, generate_drifting_trace

    trace = generate_drifting_trace(
        DriftingWorkload(n_requests=n_requests), rng=np.random.default_rng(3)
    )
    history = trace.head(max(1, n_requests * 15 // 100))
    npf = EEVFSCluster(config=EEVFSConfig().as_npf(), seed=seed).run(
        trace, history=history
    )
    static = EEVFSCluster(config=EEVFSConfig(), seed=seed).run(trace, history=history)
    dynamic = EEVFSCluster(
        config=EEVFSConfig(reprefetch_interval_s=30.0, popularity_window_s=60.0),
        seed=seed,
    ).run(trace, history=history)
    return {"npf": npf, "static": static, "dynamic": dynamic}


def ablate_node_scaling(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32),
    n_requests: int = 1000,
    seed: int = 0,
) -> AblationResult:
    """Scalability: does the thin storage server stay out of the way?

    §III-A: "When the number of storage nodes scales up, the storage
    server might become a performance bottleneck, we address this issue
    by simplifying the functionality of the storage server."  We scale
    the cluster while scaling the offered load with it (inter-arrival
    shrinks proportionally), so per-node load is constant; a scalable
    design keeps response time and savings flat.
    """
    comparisons = []
    for count in node_counts:
        half = max(1, count // 2)
        cluster = default_cluster(n_type1=half, n_type2=count - half)
        workload = SyntheticWorkload(
            n_requests=n_requests,
            inter_arrival_s=0.700 * 8.0 / count,
        )
        trace = generate_synthetic_trace(workload, rng=np.random.default_rng(1))
        comparisons.append(
            run_pair(trace, config=EEVFSConfig(), cluster=cluster, seed=seed)
        )
    return AblationResult(
        name="node scaling (constant per-node load)",
        x_label="storage_nodes",
        x_values=list(node_counts),
        comparisons=comparisons,
    )


def ablate_diurnal(
    n_requests: int = 1000,
    seed: int = 0,
) -> AblationResult:
    """Bursty (diurnal) vs constant arrivals at matched volume and span.

    Data-centre load is periodic; a policy that only works on smooth
    arrivals is useless.  Result: the look-ahead sleep policy extracts
    essentially the same savings from a 5x day/night swing as from a
    constant stream of equal volume -- window *totals*, not window
    arrangement, set the savings -- while bursts cost a little extra
    response time (queueing at the peaks).
    """
    from repro.traces.diurnal import DiurnalWorkload, generate_diurnal_trace

    diurnal_trace = generate_diurnal_trace(
        DiurnalWorkload(n_requests=n_requests), rng=np.random.default_rng(4)
    )
    mean_ia = diurnal_trace.duration_s / max(1, diurnal_trace.n_requests - 1)
    constant_trace = generate_synthetic_trace(
        SyntheticWorkload(n_requests=n_requests, inter_arrival_s=mean_ia),
        rng=np.random.default_rng(4),
    )
    comparisons = [
        run_pair(diurnal_trace, config=EEVFSConfig(), seed=seed),
        run_pair(constant_trace, config=EEVFSConfig(), seed=seed),
    ]
    return AblationResult(
        name="diurnal vs constant arrivals",
        x_label="arrival_pattern",
        x_values=["diurnal", "constant"],
        comparisons=comparisons,
    )


def ablate_replay_mode(
    modes: Sequence[str] = ("open", "paced", "closed"),
    n_requests: int = 500,
    seed: int = 0,
) -> Dict[str, PairedComparison]:
    """How the client replay discipline changes the headline numbers."""
    from repro.metrics.comparison import compare

    trace = _default_trace(n_requests)
    out: Dict[str, PairedComparison] = {}
    for mode in modes:
        pf = EEVFSCluster(config=EEVFSConfig(), seed=seed).run(
            trace, replay_mode=mode
        )
        npf = EEVFSCluster(config=EEVFSConfig().as_npf(), seed=seed).run(
            trace, replay_mode=mode
        )
        out[mode] = compare(pf, npf)
    return out
