"""The baseline shoot-out as one parallel job batch.

The seven comparators (EEVFS-PF plus the six energy-policy baselines)
all replay the same trace independently -- there is no shared state to
serialise -- so the suite is the textbook fan-out: one
:class:`~repro.parallel.jobs.JobSpec` per system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import EEVFSConfig
from repro.core.filesystem import RunResult
from repro.parallel import JobSpec, run_jobs, TraceSpec
from repro.traces.synthetic import MB, SyntheticWorkload

#: Display name -> (baseline function suffix or None for EEVFS-PF,
#: extra keyword arguments).  Order matches the historical report table.
SUITE: List[Tuple[str, Optional[str], Tuple[Tuple[str, object], ...]]] = [
    ("EEVFS-PF", None, ()),
    ("EEVFS-NPF", "npf", ()),
    ("Always-on", "alwayson", ()),
    ("MAID", "maid", (("cache_bytes", 700 * MB),)),
    ("PDC", "pdc", ()),
    ("DRPM", "drpm", ()),
    ("Low-power HW", "lowpower", ()),
]


def baseline_suite_specs(
    n_requests: int = 1000,
    seed: int = 0,
    config: Optional[EEVFSConfig] = None,
    trace_seed: int = 1,
) -> List[JobSpec]:
    """One job per comparator, all over the identical synthetic trace."""
    trace = TraceSpec(workload=SyntheticWorkload(n_requests=n_requests), seed=trace_seed)
    specs: List[JobSpec] = []
    for name, baseline, kwargs in SUITE:
        if baseline is None:
            specs.append(
                JobSpec(
                    label=name,
                    trace=trace,
                    config=config or EEVFSConfig(),
                    seed=seed,
                    mode="eevfs",
                )
            )
        else:
            specs.append(
                JobSpec(
                    label=name,
                    trace=trace,
                    seed=seed,
                    mode="baseline",
                    baseline=baseline,
                    baseline_kwargs=kwargs,
                )
            )
    return specs


def run_baseline_suite(
    n_requests: int = 1000,
    seed: int = 0,
    config: Optional[EEVFSConfig] = None,
    jobs: Optional[int] = 1,
) -> Dict[str, RunResult]:
    """Run every comparator; returns ``{display name: RunResult}`` in
    table order."""
    specs = baseline_suite_specs(n_requests=n_requests, seed=seed, config=config)
    results = run_jobs(specs, jobs=jobs)
    return {spec.label: result for spec, result in zip(specs, results, strict=True)}
