"""Regeneration of the paper's Figs. 3-6.

Each ``figureN`` function returns a :class:`FigureResult`: the panels'
series (x values plus one column per plotted line) and a ``render()``
producing the plain-text equivalent of the figure.  Figures 3, 4 and 5
slice one shared :class:`~repro.experiments.sweeps.SweepSet`; Fig. 6 runs
the Berkeley-web-like trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import ClusterSpec, EEVFSConfig
from repro.experiments.runner import run_pair
from repro.experiments.sweeps import run_all_sweeps, SweepSet
from repro.metrics.comparison import PairedComparison
from repro.metrics.report import format_series
from repro.traces.berkeley import BerkeleyWebWorkload, generate_berkeley_like_trace

#: Panel letter -> (sweep name, x-axis label), fixed across Figs. 3/4/5.
PANELS = {
    "a": ("data_size", "Data Size (MB)"),
    "b": ("mu", "MU"),
    "c": ("inter_arrival", "Inter-arrival delay (ms)"),
    "d": ("prefetch_count", "# of files to prefetch"),
}


@dataclass
class Panel:
    """One sub-figure: x values and named series."""

    letter: str
    x_label: str
    x_values: List[object]
    series: Dict[str, List[float]]

    def render(self, title: str) -> str:
        return format_series(
            self.x_label, self.x_values, self.series, title=f"{title}({self.letter})"
        )


@dataclass
class FigureResult:
    """All panels of one figure plus provenance."""

    figure: str
    title: str
    panels: Dict[str, Panel] = field(default_factory=dict)

    def render(self) -> str:
        blocks = [f"=== {self.figure}: {self.title} ==="]
        blocks.extend(
            self.panels[letter].render(self.figure) for letter in sorted(self.panels)
        )
        return "\n\n".join(blocks)

    def panel(self, letter: str) -> Panel:
        return self.panels[letter]


def _panels_from(
    sweeps: SweepSet, extract, series_names: Sequence[str]
) -> Dict[str, Panel]:
    panels: Dict[str, Panel] = {}
    for letter, (sweep, x_label) in PANELS.items():
        if sweep not in sweeps:
            continue
        points = sweeps[sweep]
        columns = {name: [] for name in series_names}
        for point in points:
            values = extract(point.comparison)
            for name, value in zip(series_names, values, strict=True):
                columns[name].append(value)
        panels[letter] = Panel(
            letter=letter,
            x_label=x_label,
            x_values=[p.value for p in points],
            series=columns,
        )
    return panels


def figure3(sweeps: Optional[SweepSet] = None, **sweep_kwargs) -> FigureResult:
    """Fig. 3: energy consumption (J), PF vs NPF, four panels."""
    sweeps = sweeps if sweeps is not None else run_all_sweeps(**sweep_kwargs)
    result = FigureResult(
        figure="Fig3", title="Energy consumption of the cluster storage system (J)"
    )
    result.panels = _panels_from(
        sweeps,
        lambda c: (c.pf.energy_j, c.npf.energy_j, c.energy_savings_pct),
        ("PF_energy_J", "NPF_energy_J", "savings_pct"),
    )
    return result


def figure4(sweeps: Optional[SweepSet] = None, **sweep_kwargs) -> FigureResult:
    """Fig. 4: total power-state transitions, four panels."""
    sweeps = sweeps if sweeps is not None else run_all_sweeps(**sweep_kwargs)
    result = FigureResult(figure="Fig4", title="Number of power state transitions")
    result.panels = _panels_from(
        sweeps,
        lambda c: (c.pf.transitions, c.npf.transitions),
        ("PF_transitions", "NPF_transitions"),
    )
    return result


def figure5(sweeps: Optional[SweepSet] = None, **sweep_kwargs) -> FigureResult:
    """Fig. 5: mean file-request response time (s), PF vs NPF."""
    sweeps = sweeps if sweeps is not None else run_all_sweeps(**sweep_kwargs)
    result = FigureResult(figure="Fig5", title="File request response time (s)")
    result.panels = _panels_from(
        sweeps,
        lambda c: (
            c.pf.mean_response_s,
            c.npf.mean_response_s,
            c.response_penalty_pct,
        ),
        ("PF_response_s", "NPF_response_s", "penalty_pct"),
    )
    return result


@dataclass
class Figure6Result:
    """Fig. 6: energy on the Berkeley-web-like trace, PF vs NPF."""

    comparison: PairedComparison

    @property
    def pf_energy_j(self) -> float:
        return self.comparison.pf.energy_j

    @property
    def npf_energy_j(self) -> float:
        return self.comparison.npf.energy_j

    @property
    def savings_pct(self) -> float:
        return self.comparison.energy_savings_pct

    def render(self) -> str:
        return format_series(
            "mode",
            ["PF", "NPF"],
            {
                "energy_J": [self.pf_energy_j, self.npf_energy_j],
                "transitions": [
                    float(self.comparison.pf.transitions),
                    float(self.comparison.npf.transitions),
                ],
            },
            title=(
                "=== Fig6: Berkeley web trace energy "
                f"(savings {self.savings_pct:.1f} %) ==="
            ),
        )


def figure6(
    n_requests: int = 1000,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    trace_seed: int = 2,
) -> Figure6Result:
    """Regenerate Fig. 6 on the Berkeley-web-like trace (§VI-D setup:
    10 MB data size, K=70, re-spaced inter-arrival)."""
    workload = BerkeleyWebWorkload(n_requests=n_requests)
    trace = generate_berkeley_like_trace(
        workload, rng=np.random.default_rng(trace_seed)
    )
    comparison = run_pair(trace, config=config, cluster=cluster, seed=seed)
    return Figure6Result(comparison=comparison)
