"""The experiment harness: every table and figure of the evaluation.

* :mod:`repro.experiments.runner`    -- run paired PF/NPF experiments,
* :mod:`repro.experiments.sweeps`    -- the four Table-II parameter sweeps
  (shared by Figs. 3, 4 and 5, exactly as in the paper),
* :mod:`repro.experiments.figures`   -- regenerate Figs. 3-6,
* :mod:`repro.experiments.tables`    -- regenerate Tables I and II,
* :mod:`repro.experiments.ablations` -- ablations beyond the paper
  (idle threshold, hints, disks per node, predictors, replay modes),
* :mod:`repro.experiments.metaplane` -- metadata-plane chaos drills and
  the shard x replica availability sweep.
"""

from repro.experiments.crossover import find_min_effective_k
from repro.experiments.figures import figure3, figure4, figure5, figure6
from repro.experiments.metaplane import (
    drill_fingerprint,
    metaplane_sweep,
    run_metadata_drill,
)
from repro.experiments.paper import generate_report
from repro.experiments.repetition import repeat_pair
from repro.experiments.runner import PairResult, run_pair
from repro.experiments.sensitivity import power_model_sensitivity
from repro.experiments.sweeps import run_all_sweeps, run_sweep, SweepSet
from repro.experiments.tables import table1, table2
from repro.experiments.validation import validate_reproduction

__all__ = [
    "PairResult",
    "SweepSet",
    "figure3",
    "figure4",
    "figure5",
    "drill_fingerprint",
    "figure6",
    "find_min_effective_k",
    "generate_report",
    "metaplane_sweep",
    "power_model_sensitivity",
    "repeat_pair",
    "run_all_sweeps",
    "run_metadata_drill",
    "run_pair",
    "run_sweep",
    "table1",
    "table2",
    "validate_reproduction",
]
