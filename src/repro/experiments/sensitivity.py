"""Sensitivity of the conclusions to the substituted power model.

The testbed's power figures are not in the paper; DESIGN.md documents
the calibration we chose.  A reproduction whose *conclusions* depended
on that choice would be fragile -- so this module re-runs the headline
comparison across a grid of power-model perturbations (node base power
and disk power each scaled over a range) and reports how the savings
move.  The benchmark asserts the qualitative result (PF wins; savings in
a single-digit-to-twenties band) across the whole grid.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import ClusterSpec, default_cluster, EEVFSConfig
from repro.disk.specs import DiskSpec
from repro.experiments.runner import run_pair
from repro.metrics.report import format_table
from repro.traces.model import Trace
from repro.traces.synthetic import generate_synthetic_trace, SyntheticWorkload


def scale_disk_power(spec: DiskSpec, factor: float) -> DiskSpec:
    """Scale every power/energy figure of a drive by *factor*."""
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor!r}")
    return spec.with_overrides(
        power_active_w=spec.power_active_w * factor,
        power_idle_w=spec.power_idle_w * factor,
        power_standby_w=spec.power_standby_w * factor,
        spinup_energy_j=spec.spinup_energy_j * factor,
        spindown_energy_j=spec.spindown_energy_j * factor,
    )


def perturbed_cluster(
    base_power_factor: float = 1.0,
    disk_power_factor: float = 1.0,
    base: Optional[ClusterSpec] = None,
) -> ClusterSpec:
    """The testbed with its power model scaled."""
    if base_power_factor <= 0 or disk_power_factor <= 0:
        raise ValueError("factors must be > 0")
    base = base or default_cluster()
    nodes = tuple(
        replace(
            node,
            base_power_w=node.base_power_w * base_power_factor,
            disk_spec=scale_disk_power(node.disk_spec, disk_power_factor),
            buffer_disk_spec=scale_disk_power(node.buffer_spec, disk_power_factor),
        )
        for node in base.storage_nodes
    )
    return replace(base, storage_nodes=nodes)


def power_model_sensitivity(
    base_factors: Sequence[float] = (0.5, 1.0, 1.5),
    disk_factors: Sequence[float] = (0.7, 1.0, 1.3),
    n_requests: int = 1000,
    seed: int = 0,
    trace: Optional[Trace] = None,
) -> Dict[Tuple[float, float], float]:
    """Savings (%) over the (base power x disk power) perturbation grid.

    Scaling both transition energies and state powers together keeps each
    perturbed drive physically consistent (its break-even time is
    invariant under a uniform scale).
    """
    trace = (
        trace
        if trace is not None
        else generate_synthetic_trace(
            SyntheticWorkload(n_requests=n_requests), rng=np.random.default_rng(1)
        )
    )
    grid: Dict[Tuple[float, float], float] = {}
    for base_factor in base_factors:
        for disk_factor in disk_factors:
            cluster = perturbed_cluster(base_factor, disk_factor)
            comparison = run_pair(trace, config=EEVFSConfig(), cluster=cluster, seed=seed)
            grid[(base_factor, disk_factor)] = comparison.energy_savings_pct
    return grid


def render_sensitivity(grid: Dict[Tuple[float, float], float]) -> str:
    """Render the savings grid: rows = base-power factor, cols = disk."""
    base_factors = sorted({k[0] for k in grid})
    disk_factors = sorted({k[1] for k in grid})
    headers = ["base\\disk", *(f"disk x{d}" for d in disk_factors)]
    rows: List[List[object]] = [
        [f"base x{b}", *(grid[(b, d)] for d in disk_factors)]
        for b in base_factors
    ]
    return format_table(
        headers,
        rows,
        title="Energy savings (%) vs power-model perturbation",
    )
