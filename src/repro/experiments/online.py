"""The oracle-vs-online ablation (`eevfs online`).

The repo's single biggest open question about the paper: how much of
the oracle-driven ≈17% energy savings survives when nothing is known
in advance?  For every experiment point three runs share one trace and
seed:

* **oracle** -- the paper's PF mode: popularity from the full trace,
  hints, setup-time prefetch;
* **online** -- ``online_mode``: cold buffers, streaming estimation,
  adaptive K/idle-threshold control, drift-triggered re-prefetch, and
  *no* hints;
* **npf** -- the no-prefetch comparator both are measured against.

The corpus is all four Table-II sweeps plus the Berkeley-web-like trace
plus a drifting-skew workload (the hotspot moves mid-run -- the case an
oracle ranking fundamentally cannot chase, and the reason online mode
exists).  ``savings = (npf - pf) / npf``; **retention** is the share of
the oracle's savings the online mode keeps.

Determinism: :func:`online_fingerprint` canonicalises every number the
ablation produces (energies, transitions, controller trajectories --
never request ids or wall-clock) into sorted JSON; CI's online-smoke
job runs the same seed twice and byte-compares the two files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ClusterSpec, EEVFSConfig
from repro.core.filesystem import RunResult
from repro.experiments.sweeps import _config_for, _workload_for, SWEEPS
from repro.parallel import JobSpec, run_jobs, TraceSpec
from repro.traces.berkeley import BerkeleyWebWorkload
from repro.traces.nonstationary import DriftingWorkload

#: The ablation corpus: the four Table-II sweeps plus the two trace
#: studies (order is presentation order).
ONLINE_CORPUS = ("data_size", "mu", "inter_arrival", "prefetch_count", "traces")

#: The two trace studies swept under the "traces" pseudo-parameter.
TRACE_STUDIES = ("berkeley", "drifting")


def online_config(
    base: Optional[EEVFSConfig] = None, estimator: str = "ema"
) -> EEVFSConfig:
    """The online-mode variant of an oracle config."""
    return replace(
        base if base is not None else EEVFSConfig(),
        online_mode=True,
        online_estimator=estimator,
    )


@dataclass
class OnlinePoint:
    """One experiment point: oracle vs online vs npf over one trace."""

    parameter: str
    value: object
    oracle: RunResult
    online: RunResult
    npf: RunResult

    @staticmethod
    def _savings_pct(pf_energy: float, npf_energy: float) -> float:
        return (
            100.0 * (npf_energy - pf_energy) / npf_energy if npf_energy > 0 else 0.0
        )

    @property
    def oracle_savings_pct(self) -> float:
        """Oracle PF energy savings vs NPF (the paper's headline)."""
        return self._savings_pct(self.oracle.energy_j, self.npf.energy_j)

    @property
    def online_savings_pct(self) -> float:
        """Online-mode energy savings vs NPF (no hindsight)."""
        return self._savings_pct(self.online.energy_j, self.npf.energy_j)

    @property
    def retention(self) -> Optional[float]:
        """Share of oracle savings the online mode keeps (None if the
        oracle saved nothing at this point -- no baseline to retain)."""
        oracle = self.oracle_savings_pct
        if oracle <= 0.0:
            return None
        return self.online_savings_pct / oracle

    @property
    def oracle_latency_penalty_pct(self) -> float:
        npf = self.npf.mean_response_s
        return 100.0 * (self.oracle.mean_response_s - npf) / npf if npf > 0 else 0.0

    @property
    def online_latency_penalty_pct(self) -> float:
        npf = self.npf.mean_response_s
        return 100.0 * (self.online.mean_response_s - npf) / npf if npf > 0 else 0.0


def _trace_spec_for(
    sweep: str, value: object, n_requests: int, trace_seed: int
) -> TraceSpec:
    if sweep == "traces":
        if value == "berkeley":
            return TraceSpec(
                kind="berkeley",
                workload=BerkeleyWebWorkload(n_requests=n_requests),
                seed=trace_seed,
            )
        if value == "drifting":
            return TraceSpec(
                kind="drifting",
                workload=DriftingWorkload(n_requests=n_requests),
                seed=trace_seed,
            )
        raise ValueError(f"unknown trace study {value!r}; options: {TRACE_STUDIES}")
    return TraceSpec(
        workload=_workload_for(sweep, value, n_requests), seed=trace_seed
    )


def ablation_specs(
    sweeps: Optional[Sequence[str]] = None,
    n_requests: int = 1000,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    trace_seed: int = 1,
    estimator: str = "ema",
) -> Tuple[List[Tuple[str, object]], List[JobSpec]]:
    """Describe the ablation as single-run jobs (three per point).

    Returns ``(points, specs)`` where ``points`` is the flat
    ``(sweep, value)`` list and ``specs`` holds oracle/online/npf jobs
    in that order for each point.
    """
    selected = list(sweeps) if sweeps is not None else list(ONLINE_CORPUS)
    base = config if config is not None else EEVFSConfig()
    points: List[Tuple[str, object]] = []
    for sweep in selected:
        if sweep == "traces":
            points.extend(("traces", study) for study in TRACE_STUDIES)
        elif sweep in SWEEPS:
            points.extend((sweep, value) for value in SWEEPS[sweep][1])
        else:
            raise ValueError(
                f"unknown sweep {sweep!r}; options: {sorted(SWEEPS)} + ['traces']"
            )
    specs: List[JobSpec] = []
    for sweep, value in points:
        trace = _trace_spec_for(sweep, value, n_requests, trace_seed)
        oracle = (
            _config_for(sweep, value, base) if sweep in SWEEPS else base
        )
        for system, cfg in (
            ("oracle", oracle.as_pf()),
            ("online", online_config(oracle, estimator=estimator)),
            ("npf", oracle.as_npf()),
        ):
            specs.append(
                JobSpec(
                    label=f"online:{sweep}={value}:{system}",
                    trace=trace,
                    config=cfg,
                    cluster=cluster,
                    seed=seed,
                    mode="eevfs",
                )
            )
    return points, specs


def online_ablation(
    sweeps: Optional[Sequence[str]] = None,
    n_requests: int = 1000,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    jobs: Optional[int] = 1,
    estimator: str = "ema",
) -> Dict[str, List[OnlinePoint]]:
    """Run the oracle-vs-online ablation; results keyed by sweep name.

    All points are submitted as one job batch (three runs per point), so
    ``jobs > 1`` overlaps everything; results are identical to serial.
    """
    points, specs = ablation_specs(
        sweeps,
        n_requests=n_requests,
        config=config,
        cluster=cluster,
        seed=seed,
        estimator=estimator,
    )
    results = iter(run_jobs(specs, jobs=jobs))
    ablation: Dict[str, List[OnlinePoint]] = {}
    for sweep, value in points:
        oracle, online, npf = next(results), next(results), next(results)
        ablation.setdefault(sweep, []).append(
            OnlinePoint(
                parameter=sweep, value=value, oracle=oracle, online=online, npf=npf
            )
        )
    return ablation


def ablation_rows(points: Sequence[OnlinePoint]) -> List[List[object]]:
    """Flatten one sweep's points into report rows."""
    rows: List[List[object]] = []
    for point in points:
        stats = point.online.online
        rows.append(
            [
                point.value,
                point.oracle_savings_pct,
                point.online_savings_pct,
                "-" if point.retention is None else f"{point.retention:.2f}",
                point.oracle_latency_penalty_pct,
                point.online_latency_penalty_pct,
                "-" if stats is None else f"{stats.k_initial}->{stats.k_final}",
                0 if stats is None else stats.replans_triggered,
            ]
        )
    return rows


ABLATION_HEADERS = [
    "value",
    "oracle_save_%",
    "online_save_%",
    "retention",
    "oracle_lat_%",
    "online_lat_%",
    "K",
    "replans",
]


def retention_summary(
    ablation: Dict[str, List[OnlinePoint]],
) -> Dict[str, float]:
    """Headline numbers: mean savings and mean retention per corpus.

    ``retention`` averages only the points where the oracle actually
    saved energy (elsewhere there is nothing to retain).
    """
    points = [point for sweep in sorted(ablation) for point in ablation[sweep]]
    if not points:
        raise ValueError("empty ablation")
    retained = [p.retention for p in points if p.retention is not None]
    return {
        "points": float(len(points)),
        "oracle_savings_mean_pct": sum(p.oracle_savings_pct for p in points)
        / len(points),
        "online_savings_mean_pct": sum(p.online_savings_pct for p in points)
        / len(points),
        "retention_mean": (
            sum(retained) / len(retained) if retained else 0.0
        ),
    }


def online_fingerprint(ablation: Dict[str, List[OnlinePoint]]) -> str:
    """Canonical JSON of everything the ablation determines.

    Byte-identical across repeated same-seed runs (the CI smoke gate).
    Includes energies, transitions, response times, and the full online
    controller trajectory; excludes request ids (process-global
    counters) and anything wall-clock.
    """

    def run_entry(result: RunResult) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "energy_j": result.energy_j,
            "transitions": result.transitions,
            "mean_response_s": result.mean_response_s,
            "buffer_hit_rate": result.buffer_hit_rate,
            "requests": result.requests_total,
            "prefetch_files_copied": result.prefetch_files_copied,
        }
        stats = result.online
        if stats is not None:
            entry["online"] = {
                "estimator": stats.estimator,
                "k_final": stats.k_final,
                "idle_final_s": stats.idle_final_s,
                "control_ticks": stats.control_ticks,
                "replans_triggered": stats.replans_triggered,
                "replans_skipped": stats.replans_skipped,
                "max_drift": stats.max_drift,
                "history": [
                    [s.time_s, s.hit_ratio, s.spinup_rate, s.k, s.idle_threshold_s]
                    for s in stats.history
                ],
            }
        return entry

    payload = {}
    for sweep in sorted(ablation):
        payload[sweep] = {
            str(point.value): {
                "oracle": run_entry(point.oracle),
                "online": run_entry(point.online),
                "npf": run_entry(point.npf),
            }
            for point in ablation[sweep]
        }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
