"""Metadata-plane chaos drills and shard/replica availability sweeps.

The paper's evaluation assumes the metadata server never fails; the
``repro.metaplane`` extension asks what it costs to drop that
assumption.  This module packages the two studies:

* :func:`run_metadata_drill` -- the headline chaos experiment: replay
  the Berkeley-web-like trace while :meth:`~repro.faults.schedule.
  FaultSchedule.meta_leader_fail` kills every shard's leader once,
  comparing an unreplicated plane (each crash takes its shard down until
  the repair) against a 3-replica group (the survivors elect around the
  crash).  The claim under test: with replication, zero requests are
  abandoned; without it, the run records nonzero leaderless time.
* :func:`metaplane_sweep` -- the same drill across a shard-count x
  replica-count grid, feeding the EXPERIMENTS.md table.

Both are deterministic for a seed: :func:`drill_fingerprint` canonicalises
a drill's outcome (aggregates, per-shard stats, the fault log -- never
request ids, which depend on process-global counters) into a JSON string
that must be byte-identical across repeated same-seed runs.  CI's
chaos-smoke job asserts exactly that.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import EEVFSConfig
from repro.core.filesystem import run_eevfs, RunResult
from repro.faults.schedule import FaultSchedule
from repro.traces.berkeley import BerkeleyWebWorkload, generate_berkeley_like_trace
from repro.traces.model import Trace

#: Retry posture for chaos drills: patient enough that a client can ride
#: out a leader election (timeout 10 s, six retries backing off 0.5 s ->
#: 4 s) instead of abandoning mid-failover.
DRILL_TIMEOUT_S = 10.0
DRILL_MAX_RETRIES = 6
DRILL_BACKOFF_BASE_S = 0.5
DRILL_BACKOFF_CAP_S = 4.0


def drill_config(replicas: int, shards: int = 4) -> EEVFSConfig:
    """The drill's cluster config: a sharded plane plus patient retries."""
    return EEVFSConfig(
        metadata_plane=True,
        metadata_shards=shards,
        metadata_replicas=replicas,
        request_timeout_s=DRILL_TIMEOUT_S,
        request_max_retries=DRILL_MAX_RETRIES,
        request_backoff_base_s=DRILL_BACKOFF_BASE_S,
        request_backoff_cap_s=DRILL_BACKOFF_CAP_S,
    )


def leader_crash_schedule(
    n_shards: int,
    first_at: float = 20.0,
    spacing: float = 40.0,
    repair_after: float = 20.0,
) -> FaultSchedule:
    """Crash each shard's current leader once, staggered, then repair it.

    Crashes land at ``first_at + shard * spacing`` so elections never
    overlap across shards; each crashed replica is repaired
    ``repair_after`` seconds later (by shard name -- the victim is only
    known at injection time).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
    schedule = FaultSchedule()
    for shard in range(n_shards):
        at = first_at + shard * spacing
        schedule.meta_leader_fail(shard, at=at)
        schedule.meta_repair(f"shard{shard}", at=at + repair_after)
    return schedule


def drill_trace(n_requests: int = 1000, trace_seed: int = 1) -> Trace:
    """The drill workload: the Berkeley-web-like trace (Fig. 6 setup)."""
    return generate_berkeley_like_trace(
        BerkeleyWebWorkload(n_requests=n_requests),
        rng=np.random.default_rng(trace_seed),
    )


def run_metadata_drill(
    n_requests: int = 1000,
    seed: int = 0,
    shards: int = 4,
    replica_counts: Sequence[int] = (1, 3),
    trace: Optional[Trace] = None,
) -> Dict[str, RunResult]:
    """Run the leader-crash drill once per replica count.

    Every run replays the same trace against the same fault schedule;
    only ``metadata_replicas`` varies.  Keys are ``"1-replica"``,
    ``"3-replica"``, ...
    """
    workload = trace if trace is not None else drill_trace(n_requests=n_requests)
    results: Dict[str, RunResult] = {}
    for replicas in replica_counts:
        results[f"{replicas}-replica"] = run_eevfs(
            workload,
            drill_config(replicas, shards=shards),
            seed=seed,
            faults=leader_crash_schedule(shards),
        )
    return results


def drill_fingerprint(results: Dict[str, RunResult]) -> str:
    """Canonical JSON of everything a drill determines, for byte-diffing.

    Includes aggregates, per-shard plane stats, and the fault log
    (times, kinds, targets, resolved victims).  Excludes request ids --
    they come from a process-global counter and differ between runs in
    one process -- and wall-clock anything.
    """
    payload = {}
    for name, result in sorted(results.items()):
        plane = result.metaplane
        entry = {
            "requests_total": result.requests_total,
            "requests_failed": result.requests_failed,
            "requests_retried": result.requests_retried,
            "request_timeouts": result.request_timeouts,
            "requests_abandoned": result.requests_abandoned,
            "requests_unroutable": result.requests_unroutable,
            "duplicate_replies": result.duplicate_replies,
            "availability": result.availability,
            "mean_response_s": result.mean_response_s,
            "energy_j": result.energy_j,
            "fault_log": [
                [record.time_s, record.kind, record.target, record.detail]
                for record in (result.fault_log or ())
            ],
        }
        if plane is not None:
            entry["metaplane"] = {
                "n_shards": plane.n_shards,
                "n_replicas": plane.n_replicas,
                "elections": plane.elections,
                "leaderless_s": plane.leaderless_s,
                "max_leaderless_s": plane.max_leaderless_s,
                "requests_routed": plane.requests_routed,
                "not_leader_rejections": plane.not_leader_rejections,
                "requests_unroutable": plane.requests_unroutable,
                "proposals_committed": plane.proposals_committed,
                "shards": [
                    [s.shard, s.elections, s.leaderless_s, s.term, s.requests_routed]
                    for s in plane.shards
                ],
            }
        payload[name] = entry
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def metaplane_sweep(
    shard_counts: Sequence[int] = (1, 2, 4),
    replica_counts: Sequence[int] = (1, 3),
    n_requests: int = 1000,
    seed: int = 0,
) -> Dict[Tuple[int, int], RunResult]:
    """The drill across a shards x replicas grid, one leader crash per
    shard in every cell.  Returns results keyed by ``(shards, replicas)``."""
    trace = drill_trace(n_requests=n_requests)
    grid: Dict[Tuple[int, int], RunResult] = {}
    for shards in shard_counts:
        schedule = leader_crash_schedule(shards)
        for replicas in replica_counts:
            grid[(shards, replicas)] = run_eevfs(
                trace,
                drill_config(replicas, shards=shards),
                seed=seed,
                faults=schedule,
            )
    return grid


def sweep_rows(grid: Dict[Tuple[int, int], RunResult]) -> list:
    """Flatten a sweep grid into report rows (EXPERIMENTS.md table)."""
    rows = []
    for (shards, replicas), result in sorted(grid.items()):
        plane = result.metaplane
        assert plane is not None  # every sweep cell runs with a plane
        rows.append(
            [
                shards,
                replicas,
                plane.elections,
                plane.leaderless_s,
                result.requests_retried,
                result.requests_abandoned,
                result.availability,
                result.mean_response_s,
            ]
        )
    return rows
