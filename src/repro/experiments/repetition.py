"""Multi-seed repetitions: confidence intervals for the headline numbers.

The paper reports single measurements.  Our runs are deterministic given
a seed, but spin-up jitter and workload draws make each seed one sample;
this module repeats an experiment across seeds and reports mean and a
t-based confidence interval, so shape claims can be asserted with
statistical backing rather than one lucky draw.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import ClusterSpec, EEVFSConfig
from repro.metrics.comparison import PairedComparison
from repro.parallel import JobSpec, run_jobs, TraceSpec
from repro.traces.synthetic import SyntheticWorkload

#: Two-sided 95 % t critical values for small sample sizes (df 1..30).
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value (1.96 beyond df=30)."""
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df!r}")
    if df in _T95:
        return _T95[df]
    if df < 30:
        return _T95[min(k for k in _T95 if k >= df)]
    return 1.96


@dataclass(frozen=True)
class RepeatedMetric:
    """Mean and 95 % confidence interval of one metric over seeds."""

    name: str
    samples: tuple

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        if self.n < 2:
            return float("nan")
        return float(np.std(self.samples, ddof=1))

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the 95 % CI on the mean (nan for n < 2)."""
        if self.n < 2:
            return float("nan")
        return t_critical_95(self.n - 1) * self.std / math.sqrt(self.n)

    @property
    def ci95(self) -> tuple:
        half = self.ci95_halfwidth
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        if self.n < 2:
            return f"{self.name}: {self.mean:.4g} (n=1)"
        return (
            f"{self.name}: {self.mean:.4g} +/- {self.ci95_halfwidth:.2g} "
            f"(95 % CI, n={self.n})"
        )


@dataclass(frozen=True)
class RepetitionResult:
    """All repeated metrics from a multi-seed pair experiment."""

    savings_pct: RepeatedMetric
    penalty_pct: RepeatedMetric
    transitions: RepeatedMetric
    comparisons: tuple

    def render(self) -> str:
        return "\n".join(
            str(m) for m in (self.savings_pct, self.penalty_pct, self.transitions)
        )


def repeat_pair(
    workload: Optional[SyntheticWorkload] = None,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    vary_trace: bool = True,
    jobs: Optional[int] = 1,
) -> RepetitionResult:
    """Run the PF/NPF pair once per seed and aggregate.

    ``vary_trace=True`` redraws the workload per seed (both sources of
    randomness vary); False replays one fixed trace so only simulation
    jitter varies.  Traces are identified by their rng seed and fetched
    from the process-wide cache, so the fixed trace is generated once no
    matter how many seeds repeat it.  ``jobs`` fans the seeds out over
    worker processes.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    workload = workload or SyntheticWorkload()
    specs = [
        JobSpec(
            label=f"repetition:seed={seed}",
            trace=TraceSpec(
                workload=workload,
                seed=(1000 + seed) if vary_trace else 1,
            ),
            config=config,
            cluster=cluster,
            seed=seed,
            mode="pair",
        )
        for seed in seeds
    ]
    comparisons: List[PairedComparison] = run_jobs(specs, jobs=jobs)
    return RepetitionResult(
        savings_pct=RepeatedMetric(
            "energy savings (%)",
            tuple(c.energy_savings_pct for c in comparisons),
        ),
        penalty_pct=RepeatedMetric(
            "response penalty (%)",
            tuple(c.response_penalty_pct for c in comparisons),
        ),
        transitions=RepeatedMetric(
            "PF transitions",
            tuple(float(c.pf.transitions) for c in comparisons),
        ),
        comparisons=tuple(comparisons),
    )
