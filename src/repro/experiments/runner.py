"""Paired PF/NPF experiment execution.

Every data point in Figs. 3-6 is one *pair* of runs over an identical
trace: EEVFS with prefetching (PF) and without (NPF).  The pair shares
the trace object and the seed, so the only difference is policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ClusterSpec, EEVFSConfig
from repro.core.filesystem import run_eevfs, RunResult
from repro.metrics.comparison import compare, PairedComparison
from repro.traces.model import Trace
from repro.traces.synthetic import generate_synthetic_trace, SyntheticWorkload


@dataclass(frozen=True)
class PairResult:
    """One x-axis point of a sweep: the parameter value and both runs."""

    parameter: str
    value: object
    comparison: PairedComparison

    @property
    def pf(self) -> RunResult:
        return self.comparison.pf

    @property
    def npf(self) -> RunResult:
        return self.comparison.npf


def run_pair(
    trace: Trace,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    obs: Optional[bool] = None,
) -> PairedComparison:
    """Run PF and NPF over the same *trace* and compare.

    ``obs`` attaches observability (span traces on both runs' results);
    None defers to ``config.obs``.
    """
    config = config or EEVFSConfig()
    pf = run_eevfs(trace, config=config.as_pf(), cluster=cluster, seed=seed, obs=obs)
    npf = run_eevfs(
        trace, config=config.as_npf(), cluster=cluster, seed=seed, obs=obs
    )
    return compare(pf, npf)


def run_pair_for_workload(
    workload: SyntheticWorkload,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    trace_seed: int = 1,
) -> PairedComparison:
    """Generate the synthetic trace for *workload*, then :func:`run_pair`."""
    trace = generate_synthetic_trace(
        workload, rng=np.random.default_rng(trace_seed)
    )
    return run_pair(trace, config=config, cluster=cluster, seed=seed)
