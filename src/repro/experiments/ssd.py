"""The SSD buffer-tier sweep (`eevfs ssd`).

What does an FTL-level SSD buy (or cost) as the buffer tier?  The paper
runs its buffer disk on a spindle because that is what 2010 hardware
offered; ``repro.backend`` makes the tier pluggable, and this experiment
sweeps the interesting flash knobs -- logical capacity, channel
parallelism and the GC free-block reserve -- with PF and NPF runs per
point plus an HDD-buffer reference pair per capacity.

The workload is deliberately write-heavy (default 40% writes): prefetch
copies and staged writes both land in the SSD's write cache and destage
through the FTL, and rewrite churn is what makes garbage collection,
write amplification and erase wear visible.  A read-only corpus never
wraps the buffer (placement respects its capacity), so WA stays at 1.0
and the sweep would measure nothing flash-specific.

Determinism: :func:`ssd_fingerprint` canonicalises every number the
sweep produces into sorted JSON; CI's ssd-smoke job runs the same seed
twice and byte-compares the two files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ClusterSpec, EEVFSConfig
from repro.core.filesystem import RunResult
from repro.parallel import JobSpec, run_jobs, TraceSpec
from repro.traces.synthetic import MB, SyntheticWorkload

#: Default sweep grid: small enough that per-node write volume exceeds
#: the buffer and the extent ring wraps (GC pressure), spanning the
#: channel-parallelism range of commodity SATA parts.
DEFAULT_CAPACITIES_MB = (16, 32, 64)
DEFAULT_CHANNELS = (1, 2, 4)
DEFAULT_GC_FRACTIONS = (0.10,)

#: Idle seconds before the SSD buffer drops into DEVSLP.  Milliseconds
#: of break-even make a short timer safe; the HDD reference keeps the
#: paper's never-sleeping buffer disk.
SSD_BUFFER_IDLE_S = 2.0


@dataclass
class SSDSweepPoint:
    """One sweep point: a PF/NPF pair on one buffer-tier configuration.

    ``backend`` is ``"hdd"`` for the reference pairs, where the flash
    knobs (``channels``, ``gc_free_fraction``) are meaningless and hold
    0 / 0.0.
    """

    backend: str
    capacity_mb: int
    channels: int
    gc_free_fraction: float
    pf: RunResult
    npf: RunResult

    @property
    def savings_pct(self) -> float:
        """PF energy savings vs NPF at this point."""
        npf = self.npf.energy_j
        return 100.0 * (npf - self.pf.energy_j) / npf if npf > 0 else 0.0

    @property
    def latency_delta_pct(self) -> float:
        npf = self.npf.mean_response_s
        return 100.0 * (self.pf.mean_response_s - npf) / npf if npf > 0 else 0.0


def _point_config(
    base: EEVFSConfig, backend: str, capacity_mb: int, channels: int, gc: float
) -> EEVFSConfig:
    """The PF config for one sweep point (NPF derives via ``as_npf``)."""
    if backend == "hdd":
        return replace(base, buffer_capacity_bytes=capacity_mb * MB)
    return replace(
        base,
        buffer_backend="ssd",
        buffer_capacity_bytes=capacity_mb * MB,
        ssd_capacity_mb=capacity_mb,
        ssd_channels=channels,
        ssd_gc_free_fraction=gc,
        ssd_buffer_idle_s=SSD_BUFFER_IDLE_S,
    )


def ssd_sweep_specs(
    capacities_mb: Sequence[int] = DEFAULT_CAPACITIES_MB,
    channels: Sequence[int] = DEFAULT_CHANNELS,
    gc_fractions: Sequence[float] = DEFAULT_GC_FRACTIONS,
    n_requests: int = 400,
    write_fraction: float = 0.4,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    trace_seed: int = 1,
) -> Tuple[List[Tuple[str, int, int, float]], List[JobSpec]]:
    """Describe the sweep as single-run jobs (PF then NPF per point).

    Returns ``(points, specs)`` where ``points`` is the flat
    ``(backend, capacity_mb, channels, gc_free_fraction)`` list: one HDD
    reference per capacity, then the full SSD grid.
    """
    base = config if config is not None else EEVFSConfig()
    trace = TraceSpec(
        workload=SyntheticWorkload(
            n_requests=n_requests, write_fraction=write_fraction
        ),
        seed=trace_seed,
    )
    points: List[Tuple[str, int, int, float]] = []
    for cap in capacities_mb:
        points.append(("hdd", cap, 0, 0.0))
    for cap in capacities_mb:
        for ch in channels:
            for gc in gc_fractions:
                points.append(("ssd", cap, ch, gc))
    specs: List[JobSpec] = []
    for backend, cap, ch, gc in points:
        pf = _point_config(base, backend, cap, ch, gc)
        for system, cfg in (("pf", pf.as_pf()), ("npf", pf.as_npf())):
            specs.append(
                JobSpec(
                    label=f"ssd:{backend}:cap={cap}:ch={ch}:gc={gc}:{system}",
                    trace=trace,
                    config=cfg,
                    cluster=cluster,
                    seed=seed,
                    mode="eevfs",
                )
            )
    return points, specs


def ssd_sweep(
    capacities_mb: Sequence[int] = DEFAULT_CAPACITIES_MB,
    channels: Sequence[int] = DEFAULT_CHANNELS,
    gc_fractions: Sequence[float] = DEFAULT_GC_FRACTIONS,
    n_requests: int = 400,
    write_fraction: float = 0.4,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> List[SSDSweepPoint]:
    """Run the buffer-tier sweep; one :class:`SSDSweepPoint` per point."""
    points, specs = ssd_sweep_specs(
        capacities_mb,
        channels,
        gc_fractions,
        n_requests=n_requests,
        write_fraction=write_fraction,
        config=config,
        cluster=cluster,
        seed=seed,
    )
    results = iter(run_jobs(specs, jobs=jobs))
    out: List[SSDSweepPoint] = []
    for backend, cap, ch, gc in points:
        pf, npf = next(results), next(results)
        out.append(
            SSDSweepPoint(
                backend=backend,
                capacity_mb=cap,
                channels=ch,
                gc_free_fraction=gc,
                pf=pf,
                npf=npf,
            )
        )
    return out


SSD_HEADERS = [
    "buffer",
    "cap_mb",
    "ch",
    "gc",
    "pf_energy_j",
    "npf_energy_j",
    "save_%",
    "resp_ms",
    "WA",
    "erases",
    "max_erase",
    "transitions",
]


def sweep_rows(points: Sequence[SSDSweepPoint]) -> List[List[object]]:
    """Flatten sweep points into report rows (flash columns from PF)."""
    rows: List[List[object]] = []
    for p in points:
        flash_free = p.backend != "ssd"
        rows.append(
            [
                p.backend,
                p.capacity_mb,
                "-" if flash_free else p.channels,
                "-" if flash_free else f"{p.gc_free_fraction:.2f}",
                f"{p.pf.energy_j:.0f}",
                f"{p.npf.energy_j:.0f}",
                f"{p.savings_pct:.1f}",
                f"{p.pf.mean_response_s * 1000:.1f}",
                "-" if flash_free else f"{p.pf.ssd_write_amplification:.2f}",
                "-" if flash_free else p.pf.ssd_erases,
                "-" if flash_free else p.pf.ssd_max_erase_count,
                p.pf.transitions,
            ]
        )
    return rows


def ssd_fingerprint(points: Sequence[SSDSweepPoint]) -> str:
    """Canonical JSON of everything the sweep determines.

    Byte-identical across repeated same-seed runs (the CI smoke gate).
    Includes energies, transitions, response times and the full flash
    accounting; excludes request ids and anything wall-clock.
    """

    def run_entry(result: RunResult) -> Dict[str, object]:
        return {
            "energy_j": result.energy_j,
            "transitions": result.transitions,
            "mean_response_s": result.mean_response_s,
            "buffer_hit_rate": result.buffer_hit_rate,
            "requests": result.requests_total,
            "writes_buffered": result.writes_buffered,
            "writes_destaged": result.writes_destaged,
            "ssd_host_pages_written": result.ssd_host_pages_written,
            "ssd_nand_pages_written": result.ssd_nand_pages_written,
            "ssd_pages_relocated": result.ssd_pages_relocated,
            "ssd_erases": result.ssd_erases,
            "ssd_max_erase_count": result.ssd_max_erase_count,
            "ssd_write_amplification": result.ssd_write_amplification,
            "ssd_cache_hits": result.ssd_cache_hits,
        }

    payload = {
        f"{p.backend}:cap={p.capacity_mb}:ch={p.channels}:gc={p.gc_free_fraction}": {
            "pf": run_entry(p.pf),
            "npf": run_entry(p.npf),
        }
        for p in points
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
