"""Export figure/sweep data as CSV or JSON for external plotting.

The plain-text renders are for the terminal; these exporters feed
gnuplot/matplotlib/spreadsheets.  One CSV per figure panel, or one JSON
document per figure.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.experiments.figures import Figure6Result, FigureResult


def figure_to_dict(figure: FigureResult) -> Dict[str, object]:
    """JSON-serialisable representation of a multi-panel figure."""
    return {
        "figure": figure.figure,
        "title": figure.title,
        "panels": {
            letter: {
                "x_label": panel.x_label,
                "x_values": list(panel.x_values),
                "series": {name: list(col) for name, col in panel.series.items()},
            }
            for letter, panel in figure.panels.items()
        },
    }


def figure6_to_dict(figure: Figure6Result) -> Dict[str, object]:
    """JSON-serialisable representation of the Fig. 6 result."""
    return {
        "figure": "Fig6",
        "pf_energy_j": figure.pf_energy_j,
        "npf_energy_j": figure.npf_energy_j,
        "savings_pct": figure.savings_pct,
        "pf_transitions": figure.comparison.pf.transitions,
        "npf_transitions": figure.comparison.npf.transitions,
        "pf_response_s": figure.comparison.pf.mean_response_s,
        "npf_response_s": figure.comparison.npf.mean_response_s,
    }


def write_figure_json(
    figure: Union[FigureResult, Figure6Result], path: Union[str, Path]
) -> Path:
    """Write one figure's data as JSON; returns the path written."""
    path = Path(path)
    data = (
        figure6_to_dict(figure)
        if isinstance(figure, Figure6Result)
        else figure_to_dict(figure)
    )
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def runresult_to_dict(result) -> Dict[str, object]:
    """Full JSON-serialisable dump of a :class:`RunResult`.

    Per-node and per-disk detail included, so downstream analysis never
    needs to re-run the simulation.
    """
    return {
        "config": {
            "prefetch_enabled": result.config.prefetch_enabled,
            "prefetch_files": result.config.prefetch_files,
            "idle_threshold_s": result.config.idle_threshold_s,
            "use_hints": result.config.use_hints,
            "stripe_width": result.config.stripe_width,
            "placement_policy": result.config.placement_policy,
        },
        "epoch_s": result.epoch_s,
        "end_s": result.end_s,
        "energy_j": result.energy_j,
        "energy_with_setup_j": result.energy_with_setup_j,
        "transitions": result.transitions,
        "mean_response_s": result.mean_response_s,
        "response_p99_s": (
            result.response_times.percentile(99)
            if result.response_times.count
            else None
        ),
        "buffer_hit_rate": result.buffer_hit_rate,
        "requests": result.requests_total,
        "requests_failed": result.requests_failed,
        "writes_buffered": result.writes_buffered,
        "writes_destaged": result.writes_destaged,
        "prefetch_files_copied": result.prefetch_files_copied,
        "latency_components": {
            name: {"mean": stat.mean, "count": stat.count}
            for name, stat in result.latency_components.items()
        },
        "nodes": [
            {
                "name": node.name,
                "base_energy_j": node.base_energy_j,
                "disk_energy_j": node.disk_energy_j,
                "transitions": node.transitions,
                "buffer_hits": node.buffer_hits,
                "data_disk_hits": node.data_disk_hits,
                "disks": [
                    {
                        "name": disk.name,
                        "energy_j": disk.energy_j,
                        "transitions": disk.transitions,
                        "spinups": disk.spinups,
                        "requests_served": disk.requests_served,
                        "time_in_state_s": disk.time_in_state_s,
                    }
                    for disk in node.disks
                ],
            }
            for node in result.nodes
        ],
    }


def write_runresult_json(result, path: Union[str, Path]) -> Path:
    """Dump a run's full measurement record to JSON."""
    path = Path(path)
    path.write_text(json.dumps(runresult_to_dict(result), indent=2) + "\n")
    return path


def write_figure_csv(figure: FigureResult, directory: Union[str, Path]) -> List[Path]:
    """Write one CSV per panel into *directory*; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for letter, panel in sorted(figure.panels.items()):
        path = directory / f"{figure.figure.lower()}{letter}.csv"
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            names = list(panel.series)
            writer.writerow([panel.x_label, *names])
            for i, x in enumerate(panel.x_values):
                writer.writerow([x, *(panel.series[name][i] for name in names)])
        written.append(path)
    return written
