"""The four Table-II parameter sweeps.

One set of runs feeds Figs. 3, 4 *and* 5 -- the paper plots the same
experiments three ways (energy, transitions, response time), so
:func:`run_all_sweeps` executes each (parameter, value) pair exactly once
and the figure modules slice the shared :class:`SweepSet`.

Fixed defaults per §VI: data size 10 MB, MU 1000, inter-arrival 700 ms,
K=70, idle threshold 5 s, 1000 files.  ``scale`` shrinks the request
count for quick runs (tests use it); 1.0 is the paper's 1000 requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ClusterSpec, EEVFSConfig, PARAMETER_GRID
from repro.experiments.runner import PairResult
from repro.parallel import JobSpec, run_jobs, TraceSpec
from repro.traces.synthetic import MB, SyntheticWorkload

#: Sweep name -> (workload/config field, Table-II values).
SWEEPS = {
    "data_size": ("data_size_mb", PARAMETER_GRID["data_size_mb"]),
    "mu": ("mu", PARAMETER_GRID["mu"]),
    "inter_arrival": ("inter_arrival_ms", PARAMETER_GRID["inter_arrival_ms"]),
    "prefetch_count": ("prefetch_files", PARAMETER_GRID["prefetch_files"]),
}


@dataclass
class SweepSet:
    """All four sweeps' paired results, keyed by sweep name."""

    results: Dict[str, List[PairResult]] = field(default_factory=dict)
    n_requests: int = 1000
    seed: int = 0

    def __getitem__(self, sweep: str) -> List[PairResult]:
        return self.results[sweep]

    def __contains__(self, sweep: str) -> bool:
        return sweep in self.results

    def x_values(self, sweep: str) -> List[object]:
        return [p.value for p in self.results[sweep]]


def _workload_for(sweep: str, value: object, n_requests: int) -> SyntheticWorkload:
    base = SyntheticWorkload(n_requests=n_requests)
    if sweep == "data_size":
        return replace(base, data_size_bytes=int(value) * MB)
    if sweep == "mu":
        return replace(base, mu=float(value))
    if sweep == "inter_arrival":
        return replace(base, inter_arrival_s=float(value) / 1000.0)
    if sweep == "prefetch_count":
        return base  # the knob lives in EEVFSConfig, not the workload
    raise ValueError(f"unknown sweep: {sweep!r}")


def _config_for(sweep: str, value: object, base: EEVFSConfig) -> EEVFSConfig:
    if sweep == "prefetch_count":
        return replace(base, prefetch_files=int(value))
    return base


def sweep_specs(
    sweep: str,
    values: Optional[Sequence[object]] = None,
    n_requests: int = 1000,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    trace_seed: int = 1,
) -> Tuple[str, List[object], List[JobSpec]]:
    """Describe one sweep as independent jobs (one PF/NPF pair per value)."""
    if sweep not in SWEEPS:
        raise ValueError(f"unknown sweep {sweep!r}; options: {sorted(SWEEPS)}")
    parameter, default_values = SWEEPS[sweep]
    values = list(default_values if values is None else values)
    base_config = config or EEVFSConfig()
    specs = [
        JobSpec(
            label=f"{sweep}:{parameter}={value}",
            trace=TraceSpec(
                workload=_workload_for(sweep, value, n_requests), seed=trace_seed
            ),
            config=_config_for(sweep, value, base_config),
            cluster=cluster,
            seed=seed,
            mode="pair",
        )
        for value in values
    ]
    return parameter, values, specs


def run_sweep(
    sweep: str,
    values: Optional[Sequence[object]] = None,
    n_requests: int = 1000,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> List[PairResult]:
    """Run one Table-II sweep; returns one :class:`PairResult` per value.

    ``jobs`` fans the per-value pairs out over worker processes (``None``
    = one per CPU).  Results are identical to ``jobs=1`` -- every value
    is an independent (trace, config, seed) triple.
    """
    parameter, values, specs = sweep_specs(
        sweep,
        values=values,
        n_requests=n_requests,
        config=config,
        cluster=cluster,
        seed=seed,
    )
    comparisons = run_jobs(specs, jobs=jobs)
    return [
        PairResult(parameter=parameter, value=value, comparison=comparison)
        for value, comparison in zip(values, comparisons, strict=True)
    ]


def run_all_sweeps(
    n_requests: int = 1000,
    config: Optional[EEVFSConfig] = None,
    cluster: Optional[ClusterSpec] = None,
    seed: int = 0,
    sweeps: Optional[Sequence[str]] = None,
    jobs: Optional[int] = 1,
) -> SweepSet:
    """Execute every Table-II sweep once (the Figs. 3/4/5 corpus).

    All four sweeps' points are submitted as one job batch, so with
    ``jobs > 1`` the slow tail of one sweep overlaps the start of the
    next instead of running sweep-by-sweep.
    """
    selected = list(sweeps) if sweeps is not None else sorted(SWEEPS)
    sweep_set = SweepSet(n_requests=n_requests, seed=seed)
    batches = [
        sweep_specs(
            sweep, n_requests=n_requests, config=config, cluster=cluster, seed=seed
        )
        for sweep in selected
    ]
    flat = [spec for _, _, specs in batches for spec in specs]
    comparisons = iter(run_jobs(flat, jobs=jobs))
    for sweep, (parameter, values, _specs) in zip(selected, batches, strict=True):
        sweep_set.results[sweep] = [
            PairResult(parameter=parameter, value=value, comparison=next(comparisons))
            for value in values
        ]
    return sweep_set
