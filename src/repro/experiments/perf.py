"""Tracked performance benchmarks: engine throughput and fan-out speedup.

:func:`run_perf_benchmark` measures seven things and writes them to
``BENCH_perf.json`` (schema ``eevfs-bench-perf/5``) so regressions show
up as a diff rather than an anecdote:

* **engine** -- event-loop throughput (events/second) on a synthetic
  stress mix of generator processes and resource contention;
* **dispatch** -- throughput of the flat continuation hot path alone
  (``call_soon``/``call_later`` chains, no generator frames), which is
  what the converted request path actually exercises;
* **single_run** -- wall-clock and runs/second for one full EEVFS run at
  the configured trace length;
* **online_run** -- the same single run in ``online_mode``, so the
  estimator/controller/replanner overhead is tracked explicitly;
* **meanfield_run** -- the closed-form backend over all Table-II sweep
  points, plus its implied speedup over one discrete run;
* **ssd_run** -- one full EEVFS run with the SSD buffer tier on a
  write-heavy workload, so the FTL/write-cache/GC overhead relative to
  ``single_run`` is tracked explicitly;
* **parallel** -- the same job batch executed with ``jobs=1`` and a real
  multi-worker pool, the observed speedup, and a strict equality check
  that the two executions produced identical metrics.

Numbers are machine-dependent; the JSON records the host's CPU count so
results are comparable across commits on the same machine, not across
machines.

Schema v2 added a ``history`` list: each benchmark invocation appends a
compact entry (headline numbers + wall-clock timestamp) while the
latest full sections stay under the v1 top-level keys, so the bench
trajectory accumulates across commits instead of being overwritten.
Schema v4 adds the ``dispatch`` and ``meanfield_run`` families and makes
the parallel section honest about worker counts: it records the
*requested* and *effective* job counts and whether a process pool could
actually start (the previous schema silently benchmarked the serial
fallback on one-CPU hosts and reported its ~1.0x as a "speedup").
Schema v5 adds the ``ssd_run`` family (the flash buffer tier's wall
clock next to the HDD ``single_run``).  Histories from v2/v3/v4 files
are carried forward as-is (old entries simply lack the new columns); a
v1 file (no history) is migrated by synthesising one entry from its
top-level sections.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
import time
from typing import Any, Dict, List, Optional

from repro.core.config import EEVFSConfig
from repro.core.filesystem import run_eevfs
from repro.experiments.sweeps import sweep_specs
from repro.parallel import default_jobs, run_jobs
from repro.sim import Simulator
from repro.traces.cache import cached_trace
from repro.traces.synthetic import SyntheticWorkload

SCHEMA = "eevfs-bench-perf/5"
SCHEMA_V4 = "eevfs-bench-perf/4"
SCHEMA_V3 = "eevfs-bench-perf/3"
SCHEMA_V2 = "eevfs-bench-perf/2"
SCHEMA_V1 = "eevfs-bench-perf/1"
DEFAULT_PATH = Path("BENCH_perf.json")
#: Oldest history entries are dropped beyond this many runs.
HISTORY_LIMIT = 100


def engine_benchmark(horizon_s: float = 4000.0, n_procs: int = 64) -> Dict[str, Any]:
    """Raw event-loop throughput on a contention-heavy synthetic mix."""
    from repro.sim.resources import Resource

    sim = Simulator()
    shared = Resource(sim, capacity=4)

    def worker(period: float):
        while True:
            with shared.request() as grant:
                yield grant
                yield sim.timeout(period)
            yield sim.timeout(period * 0.5)

    for i in range(n_procs):
        sim.process(worker(0.25 + (i % 7) * 0.125))
    start = time.perf_counter()
    sim.run(until=horizon_s)
    wall_s = time.perf_counter() - start
    events = sim.events_processed
    return {
        "events": events,
        "wall_s": wall_s,
        "events_per_s": events / wall_s if wall_s > 0 else float("inf"),
    }


def dispatch_benchmark(n_events: int = 400_000, n_chains: int = 64) -> Dict[str, Any]:
    """Throughput of the continuation hot path (no generator frames).

    ``n_chains`` self-rescheduling callbacks alternate zero-delay
    ``call_soon`` hops with ``call_later`` timer hops until ``n_events``
    continuations have fired -- the same lane/heap mix the converted
    request path drives.
    """
    sim = Simulator()
    remaining = n_events

    def hop(value: object) -> None:
        nonlocal remaining
        if remaining <= 0:
            return
        remaining -= 1
        if remaining % 4 == 0:
            sim.call_later(0.001, hop)
        else:
            sim.call_soon(hop)

    for _ in range(n_chains):
        sim.call_soon(hop)
    start = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - start
    events = sim.events_processed
    return {
        "events": events,
        "wall_s": wall_s,
        "events_per_s": events / wall_s if wall_s > 0 else float("inf"),
    }


def single_run_benchmark(n_requests: int = 1000, repeats: int = 3) -> Dict[str, Any]:
    """Best-of-N wall clock for one full EEVFS run."""
    trace = cached_trace("synthetic", SyntheticWorkload(n_requests=n_requests), 1)
    config = EEVFSConfig()
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run_eevfs(trace, config=config, seed=0)
        best = min(best, time.perf_counter() - start)
    return {
        "n_requests": n_requests,
        "wall_s": best,
        "runs_per_s": 1.0 / best if best > 0 else float("inf"),
    }


def online_run_benchmark(n_requests: int = 1000, repeats: int = 3) -> Dict[str, Any]:
    """Best-of-N wall clock for one full *online-mode* EEVFS run.

    Tracked next to ``single_run`` so the streaming-estimator /
    controller / replanner overhead lands in the bench history as its
    own number instead of hiding inside an average.
    """
    trace = cached_trace("synthetic", SyntheticWorkload(n_requests=n_requests), 1)
    config = EEVFSConfig(online_mode=True)
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run_eevfs(trace, config=config, seed=0)
        best = min(best, time.perf_counter() - start)
    return {
        "n_requests": n_requests,
        "wall_s": best,
        "runs_per_s": 1.0 / best if best > 0 else float("inf"),
    }


def ssd_run_benchmark(n_requests: int = 1000, repeats: int = 3) -> Dict[str, Any]:
    """Best-of-N wall clock for one EEVFS run on an SSD buffer tier.

    Write-heavy on purpose: rewrite churn drives the write cache,
    destager and garbage collector, so this number moves when the FTL
    hot path regresses -- which a read-mostly run would never notice.
    The (deterministic) write amplification rides along as a sanity
    column.
    """
    trace = cached_trace(
        "synthetic", SyntheticWorkload(n_requests=n_requests, write_fraction=0.4), 1
    )
    config = EEVFSConfig(
        buffer_backend="ssd", ssd_capacity_mb=32, ssd_buffer_idle_s=2.0
    )
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run_eevfs(trace, config=config, seed=0)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return {
        "n_requests": n_requests,
        "wall_s": best,
        "runs_per_s": 1.0 / best if best > 0 else float("inf"),
        "write_amplification": result.ssd_write_amplification,
    }


def _comparison_fingerprint(comparisons: List[Any]) -> List[tuple]:
    """Exact metric tuples for equality checks between executions."""
    return [
        (
            c.pf.energy_j,
            c.pf.transitions,
            c.pf.response_times.mean,
            c.npf.energy_j,
            c.npf.transitions,
            c.npf.response_times.mean,
        )
        for c in comparisons
    ]


def _pool_available(workers: int = 2) -> bool:
    """True if a process pool can actually start and run a task here."""
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            return pool.submit(abs, -1).result(timeout=60) == 1
    except Exception:
        return False


def parallel_benchmark(
    n_requests: int = 200, jobs: Optional[int] = None
) -> Dict[str, Any]:
    """Serial vs parallel execution of one sweep's job batch.

    ``jobs=None`` picks ``max(2, cpu_count)`` workers so the parallel leg
    exercises a real process pool even on one-CPU hosts -- previously it
    inherited ``default_jobs()`` (one per CPU), which on such hosts meant
    both legs ran the serial path and the reported "speedup" was noise.
    The report says what actually happened: the requested and effective
    worker counts and whether a pool could start at all (``run_jobs``
    degrades to inline execution when it cannot).
    """
    jobs_effective = max(2, default_jobs()) if jobs is None else max(1, int(jobs))
    _, _, specs = sweep_specs("mu", n_requests=n_requests)
    jobs_effective = min(jobs_effective, len(specs))
    pool_available = jobs_effective > 1 and _pool_available()

    start = time.perf_counter()
    serial = run_jobs(specs, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_jobs(specs, jobs=jobs_effective)
    parallel_s = time.perf_counter() - start

    identical = _comparison_fingerprint(serial) == _comparison_fingerprint(parallel)
    return {
        "n_jobs_in_batch": len(specs),
        "n_requests": n_requests,
        "jobs_requested": jobs,
        "jobs_effective": jobs_effective,
        "pool_available": pool_available,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "identical_metrics": identical,
    }


def meanfield_run_benchmark(n_requests: int = 1000) -> Dict[str, Any]:
    """Closed-form backend over every Table-II sweep point.

    Also measures one discrete run at the same trace length so the file
    records the backend's implied per-point speedup on this host.
    """
    from repro.analysis.meanfield import analyze
    from repro.experiments.sweeps import SWEEPS, _config_for, _workload_for

    points = [
        (sweep, value)
        for sweep, (_, values) in SWEEPS.items()
        for value in values
    ]
    start = time.perf_counter()
    for sweep, value in points:
        workload = _workload_for(sweep, value, n_requests)
        analyze(workload, config=_config_for(sweep, value, EEVFSConfig()))
    wall_s = time.perf_counter() - start

    trace = cached_trace("synthetic", SyntheticWorkload(n_requests=n_requests), 1)
    start = time.perf_counter()
    run_eevfs(trace, config=EEVFSConfig(), seed=0)
    discrete_wall_s = time.perf_counter() - start

    per_point_s = wall_s / len(points) if points else 0.0
    return {
        "n_points": len(points),
        "n_requests": n_requests,
        "wall_s": wall_s,
        "points_per_s": len(points) / wall_s if wall_s > 0 else float("inf"),
        "discrete_run_wall_s": discrete_wall_s,
        "speedup_vs_discrete": (
            discrete_wall_s / per_point_s if per_point_s > 0 else float("inf")
        ),
    }


def _history_entry(report: Dict[str, Any]) -> Dict[str, Any]:
    """Compact headline numbers of one report, for the history list."""
    engine = report.get("engine") or {}
    dispatch = report.get("dispatch") or {}
    single = report.get("single_run") or {}
    online = report.get("online_run") or {}
    meanfield = report.get("meanfield_run") or {}
    ssd = report.get("ssd_run") or {}
    parallel = report.get("parallel") or {}
    return {
        "ts": report.get("ts"),
        "cpu_count": report.get("cpu_count"),
        "engine_events_per_s": engine.get("events_per_s"),
        "dispatch_events_per_s": dispatch.get("events_per_s"),
        "single_run_n_requests": single.get("n_requests"),
        "single_run_wall_s": single.get("wall_s"),
        "single_run_runs_per_s": single.get("runs_per_s"),
        "online_run_wall_s": online.get("wall_s"),
        "online_run_runs_per_s": online.get("runs_per_s"),
        "meanfield_points_per_s": meanfield.get("points_per_s"),
        "meanfield_speedup_vs_discrete": meanfield.get("speedup_vs_discrete"),
        "ssd_run_wall_s": ssd.get("wall_s"),
        "ssd_run_runs_per_s": ssd.get("runs_per_s"),
        "parallel_jobs": parallel.get("jobs_effective", parallel.get("jobs")),
        "parallel_pool_available": parallel.get("pool_available"),
        "parallel_speedup": parallel.get("speedup"),
    }


def load_history(out_path: os.PathLike) -> List[Dict[str, Any]]:
    """Prior run history from an existing report file (empty if none).

    A v2..v4 (or current) file contributes its ``history`` list (older
    entries simply lack the newer columns); a v1 file (no history) is migrated
    by synthesising one entry from its top-level sections.  An
    unreadable or alien file contributes nothing -- the benchmark must
    never fail because an old artifact went stale.
    """
    path = Path(out_path)
    if not path.exists():
        return []
    try:
        previous = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(previous, dict):
        return []
    schema = previous.get("schema")
    if schema in (SCHEMA, SCHEMA_V4, SCHEMA_V3, SCHEMA_V2):
        history = previous.get("history")
        return list(history) if isinstance(history, list) else []
    if schema == SCHEMA_V1:
        return [_history_entry(previous)]
    return []


def run_perf_benchmark(
    n_requests: int = 300,
    jobs: Optional[int] = None,
    out_path: Optional[os.PathLike] = DEFAULT_PATH,
) -> Dict[str, Any]:
    """Run all seven benchmark families; optionally write the JSON file.

    When *out_path* already holds a previous report, its run history is
    carried forward and this run is appended -- the file accumulates the
    bench trajectory (capped at :data:`HISTORY_LIMIT` entries) instead
    of overwriting it.
    """
    report = {
        "schema": SCHEMA,
        "ts": time.time(),
        "cpu_count": os.cpu_count(),
        "engine": engine_benchmark(),
        "dispatch": dispatch_benchmark(),
        "single_run": single_run_benchmark(n_requests=n_requests),
        "online_run": online_run_benchmark(n_requests=n_requests),
        "meanfield_run": meanfield_run_benchmark(),
        "ssd_run": ssd_run_benchmark(n_requests=n_requests),
        "parallel": parallel_benchmark(
            n_requests=max(50, n_requests // 2), jobs=jobs
        ),
    }
    history = load_history(out_path) if out_path is not None else []
    history.append(_history_entry(report))
    report["history"] = history[-HISTORY_LIMIT:]
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def validate_report(report: Dict[str, Any]) -> List[str]:
    """Schema check for a perf report; returns problems (empty = valid)."""
    problems: List[str] = []
    if report.get("schema") != SCHEMA:
        problems.append(f"schema is {report.get('schema')!r}, expected {SCHEMA!r}")
    for section, keys in (
        ("engine", ("events", "wall_s", "events_per_s")),
        ("dispatch", ("events", "wall_s", "events_per_s")),
        ("single_run", ("n_requests", "wall_s", "runs_per_s")),
        ("online_run", ("n_requests", "wall_s", "runs_per_s")),
        (
            "meanfield_run",
            ("n_points", "wall_s", "points_per_s", "speedup_vs_discrete"),
        ),
        (
            "ssd_run",
            ("n_requests", "wall_s", "runs_per_s", "write_amplification"),
        ),
        (
            "parallel",
            (
                "jobs_effective",
                "pool_available",
                "serial_s",
                "parallel_s",
                "speedup",
                "identical_metrics",
            ),
        ),
    ):
        body = report.get(section)
        if not isinstance(body, dict):
            problems.append(f"missing section {section!r}")
            continue
        for key in keys:
            if key not in body:
                problems.append(f"{section}.{key} missing")
    parallel = report.get("parallel")
    if isinstance(parallel, dict) and parallel.get("identical_metrics") is not True:
        problems.append("parallel.identical_metrics is not True")
    history = report.get("history")
    if not isinstance(history, list) or not history:
        problems.append("history missing or empty")
    elif len(history) > HISTORY_LIMIT:
        problems.append(f"history has {len(history)} entries, limit {HISTORY_LIMIT}")
    return problems


def check_floor(report: Dict[str, Any], floor: Dict[str, Any]) -> List[str]:
    """Compare a report against a checked-in performance floor.

    *floor* maps dotted section keys (``"engine.events_per_s"``) to the
    minimum acceptable value.  Returns violations (empty = pass).  The
    floors are deliberately conservative -- they catch order-of-magnitude
    regressions (an accidental re-serialisation of the hot path), not
    run-to-run jitter.
    """
    problems: List[str] = []
    for dotted, minimum in floor.get("floors", {}).items():
        section, _, key = dotted.partition(".")
        value = (report.get(section) or {}).get(key)
        if not isinstance(value, (int, float)):
            problems.append(f"{dotted} missing from report")
        elif value < minimum:
            problems.append(f"{dotted} = {value:,.0f} below floor {minimum:,.0f}")
    return problems


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a perf report."""
    engine = report["engine"]
    dispatch = report["dispatch"]
    single = report["single_run"]
    online = report["online_run"]
    meanfield = report["meanfield_run"]
    ssd = report["ssd_run"]
    parallel = report["parallel"]
    history = report.get("history", [])
    overhead_pct = (
        100.0 * (online["wall_s"] - single["wall_s"]) / single["wall_s"]
        if single["wall_s"] > 0
        else 0.0
    )
    pool_note = "" if parallel["pool_available"] else " [no process pool: serial fallback]"
    return "\n".join(
        [
            f"engine      {engine['events_per_s']:,.0f} events/s "
            f"({engine['events']:,} events in {engine['wall_s']:.2f} s)",
            f"dispatch    {dispatch['events_per_s']:,.0f} events/s "
            f"({dispatch['events']:,} continuations in {dispatch['wall_s']:.2f} s)",
            f"single run  {single['wall_s']:.3f} s at {single['n_requests']} "
            f"requests ({single['runs_per_s']:.2f} runs/s)",
            f"online run  {online['wall_s']:.3f} s at {online['n_requests']} "
            f"requests ({online['runs_per_s']:.2f} runs/s; "
            f"{overhead_pct:+.1f}% vs oracle single run)",
            f"mean-field  {meanfield['n_points']} points in "
            f"{meanfield['wall_s']:.3f} s ({meanfield['points_per_s']:.0f} points/s; "
            f"{meanfield['speedup_vs_discrete']:,.0f}x vs one discrete run)",
            f"ssd run     {ssd['wall_s']:.3f} s at {ssd['n_requests']} "
            f"requests ({ssd['runs_per_s']:.2f} runs/s; "
            f"WA={ssd['write_amplification']:.2f})",
            f"parallel    {parallel['speedup']:.2f}x with "
            f"jobs={parallel['jobs_effective']} over "
            f"{parallel['n_jobs_in_batch']} jobs "
            f"(serial {parallel['serial_s']:.2f} s -> "
            f"parallel {parallel['parallel_s']:.2f} s); "
            f"identical metrics: {parallel['identical_metrics']}{pool_note}",
            f"history     {len(history)} run(s) recorded",
        ]
    )
