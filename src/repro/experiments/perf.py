"""Tracked performance benchmarks: engine throughput and fan-out speedup.

:func:`run_perf_benchmark` measures four things and writes them to
``BENCH_perf.json`` (schema ``eevfs-bench-perf/3``) so regressions show
up as a diff rather than an anecdote:

* **engine** -- raw event-loop throughput (events/second) on a synthetic
  stress mix of timeouts, processes and resource contention;
* **single_run** -- wall-clock and runs/second for one full EEVFS run at
  the configured trace length;
* **online_run** -- the same single run in ``online_mode``, so the
  estimator/controller/replanner overhead is tracked explicitly;
* **parallel** -- the same job batch executed with ``jobs=1`` and
  ``jobs=N``, the observed speedup, and a strict equality check that the
  two executions produced identical metrics.

Numbers are machine-dependent; the JSON records the host's CPU count so
results are comparable across commits on the same machine, not across
machines.

Schema v2 adds a ``history`` list: each benchmark invocation appends a
compact entry (headline numbers + wall-clock timestamp) while the
latest full sections stay under the v1 top-level keys, so the bench
trajectory accumulates across commits instead of being overwritten.  A
v1 file found on disk is migrated -- its numbers become the first
history entry; a v2 file's history (no online-run column yet) is
carried forward as-is.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
import time
from typing import Any, Dict, List, Optional

from repro.core.config import EEVFSConfig
from repro.core.filesystem import run_eevfs
from repro.experiments.sweeps import sweep_specs
from repro.parallel import default_jobs, run_jobs
from repro.sim import Simulator
from repro.traces.cache import cached_trace
from repro.traces.synthetic import SyntheticWorkload

SCHEMA = "eevfs-bench-perf/3"
SCHEMA_V2 = "eevfs-bench-perf/2"
SCHEMA_V1 = "eevfs-bench-perf/1"
DEFAULT_PATH = Path("BENCH_perf.json")
#: Oldest history entries are dropped beyond this many runs.
HISTORY_LIMIT = 100


def engine_benchmark(horizon_s: float = 4000.0, n_procs: int = 64) -> Dict[str, Any]:
    """Raw event-loop throughput on a contention-heavy synthetic mix."""
    from repro.sim.resources import Resource

    sim = Simulator()
    shared = Resource(sim, capacity=4)

    def worker(period: float):
        while True:
            with shared.request() as grant:
                yield grant
                yield sim.timeout(period)
            yield sim.timeout(period * 0.5)

    for i in range(n_procs):
        sim.process(worker(0.25 + (i % 7) * 0.125))
    start = time.perf_counter()
    sim.run(until=horizon_s)
    wall_s = time.perf_counter() - start
    events = sim.events_processed
    return {
        "events": events,
        "wall_s": wall_s,
        "events_per_s": events / wall_s if wall_s > 0 else float("inf"),
    }


def single_run_benchmark(n_requests: int = 1000, repeats: int = 3) -> Dict[str, Any]:
    """Best-of-N wall clock for one full EEVFS run."""
    trace = cached_trace("synthetic", SyntheticWorkload(n_requests=n_requests), 1)
    config = EEVFSConfig()
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run_eevfs(trace, config=config, seed=0)
        best = min(best, time.perf_counter() - start)
    return {
        "n_requests": n_requests,
        "wall_s": best,
        "runs_per_s": 1.0 / best if best > 0 else float("inf"),
    }


def online_run_benchmark(n_requests: int = 1000, repeats: int = 3) -> Dict[str, Any]:
    """Best-of-N wall clock for one full *online-mode* EEVFS run.

    Tracked next to ``single_run`` so the streaming-estimator /
    controller / replanner overhead lands in the bench history as its
    own number instead of hiding inside an average.
    """
    trace = cached_trace("synthetic", SyntheticWorkload(n_requests=n_requests), 1)
    config = EEVFSConfig(online_mode=True)
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run_eevfs(trace, config=config, seed=0)
        best = min(best, time.perf_counter() - start)
    return {
        "n_requests": n_requests,
        "wall_s": best,
        "runs_per_s": 1.0 / best if best > 0 else float("inf"),
    }


def _comparison_fingerprint(comparisons: List[Any]) -> List[tuple]:
    """Exact metric tuples for equality checks between executions."""
    return [
        (
            c.pf.energy_j,
            c.pf.transitions,
            c.pf.response_times.mean,
            c.npf.energy_j,
            c.npf.transitions,
            c.npf.response_times.mean,
        )
        for c in comparisons
    ]


def parallel_benchmark(
    n_requests: int = 200, jobs: Optional[int] = None
) -> Dict[str, Any]:
    """Serial vs parallel execution of one sweep's job batch."""
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    _, _, specs = sweep_specs("mu", n_requests=n_requests)

    start = time.perf_counter()
    serial = run_jobs(specs, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_jobs(specs, jobs=jobs)
    parallel_s = time.perf_counter() - start

    identical = _comparison_fingerprint(serial) == _comparison_fingerprint(parallel)
    return {
        "n_jobs_in_batch": len(specs),
        "n_requests": n_requests,
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "identical_metrics": identical,
    }


def _history_entry(report: Dict[str, Any]) -> Dict[str, Any]:
    """Compact headline numbers of one report, for the history list."""
    engine = report.get("engine") or {}
    single = report.get("single_run") or {}
    online = report.get("online_run") or {}
    parallel = report.get("parallel") or {}
    return {
        "ts": report.get("ts"),
        "cpu_count": report.get("cpu_count"),
        "engine_events_per_s": engine.get("events_per_s"),
        "single_run_n_requests": single.get("n_requests"),
        "single_run_wall_s": single.get("wall_s"),
        "single_run_runs_per_s": single.get("runs_per_s"),
        "online_run_wall_s": online.get("wall_s"),
        "online_run_runs_per_s": online.get("runs_per_s"),
        "parallel_jobs": parallel.get("jobs"),
        "parallel_speedup": parallel.get("speedup"),
    }


def load_history(out_path: os.PathLike) -> List[Dict[str, Any]]:
    """Prior run history from an existing report file (empty if none).

    A v3 or v2 file contributes its ``history`` list (v2 entries simply
    lack the online-run keys); a v1 file (no history) is migrated by
    synthesising one entry from its top-level sections.  An unreadable
    or alien file contributes nothing -- the benchmark must never fail
    because an old artifact went stale.
    """
    path = Path(out_path)
    if not path.exists():
        return []
    try:
        previous = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(previous, dict):
        return []
    schema = previous.get("schema")
    if schema in (SCHEMA, SCHEMA_V2):
        history = previous.get("history")
        return list(history) if isinstance(history, list) else []
    if schema == SCHEMA_V1:
        return [_history_entry(previous)]
    return []


def run_perf_benchmark(
    n_requests: int = 300,
    jobs: Optional[int] = None,
    out_path: Optional[os.PathLike] = DEFAULT_PATH,
) -> Dict[str, Any]:
    """Run all three benchmark families; optionally write the JSON file.

    When *out_path* already holds a previous report, its run history is
    carried forward and this run is appended -- the file accumulates the
    bench trajectory (capped at :data:`HISTORY_LIMIT` entries) instead
    of overwriting it.
    """
    report = {
        "schema": SCHEMA,
        "ts": time.time(),
        "cpu_count": os.cpu_count(),
        "engine": engine_benchmark(),
        "single_run": single_run_benchmark(n_requests=n_requests),
        "online_run": online_run_benchmark(n_requests=n_requests),
        "parallel": parallel_benchmark(
            n_requests=max(50, n_requests // 2), jobs=jobs
        ),
    }
    history = load_history(out_path) if out_path is not None else []
    history.append(_history_entry(report))
    report["history"] = history[-HISTORY_LIMIT:]
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def validate_report(report: Dict[str, Any]) -> List[str]:
    """Schema check for a perf report; returns problems (empty = valid)."""
    problems: List[str] = []
    if report.get("schema") != SCHEMA:
        problems.append(f"schema is {report.get('schema')!r}, expected {SCHEMA!r}")
    for section, keys in (
        ("engine", ("events", "wall_s", "events_per_s")),
        ("single_run", ("n_requests", "wall_s", "runs_per_s")),
        ("online_run", ("n_requests", "wall_s", "runs_per_s")),
        ("parallel", ("jobs", "serial_s", "parallel_s", "speedup", "identical_metrics")),
    ):
        body = report.get(section)
        if not isinstance(body, dict):
            problems.append(f"missing section {section!r}")
            continue
        for key in keys:
            if key not in body:
                problems.append(f"{section}.{key} missing")
    parallel = report.get("parallel")
    if isinstance(parallel, dict) and parallel.get("identical_metrics") is not True:
        problems.append("parallel.identical_metrics is not True")
    history = report.get("history")
    if not isinstance(history, list) or not history:
        problems.append("history missing or empty")
    elif len(history) > HISTORY_LIMIT:
        problems.append(f"history has {len(history)} entries, limit {HISTORY_LIMIT}")
    return problems


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a perf report."""
    engine = report["engine"]
    single = report["single_run"]
    online = report["online_run"]
    parallel = report["parallel"]
    history = report.get("history", [])
    overhead_pct = (
        100.0 * (online["wall_s"] - single["wall_s"]) / single["wall_s"]
        if single["wall_s"] > 0
        else 0.0
    )
    return "\n".join(
        [
            f"engine      {engine['events_per_s']:,.0f} events/s "
            f"({engine['events']:,} events in {engine['wall_s']:.2f} s)",
            f"single run  {single['wall_s']:.3f} s at {single['n_requests']} "
            f"requests ({single['runs_per_s']:.2f} runs/s)",
            f"online run  {online['wall_s']:.3f} s at {online['n_requests']} "
            f"requests ({online['runs_per_s']:.2f} runs/s; "
            f"{overhead_pct:+.1f}% vs oracle single run)",
            f"parallel    {parallel['speedup']:.2f}x with jobs={parallel['jobs']} "
            f"over {parallel['n_jobs_in_batch']} jobs "
            f"(serial {parallel['serial_s']:.2f} s -> "
            f"parallel {parallel['parallel_s']:.2f} s); "
            f"identical metrics: {parallel['identical_metrics']}",
            f"history     {len(history)} run(s) recorded",
        ]
    )
