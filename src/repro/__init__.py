"""EEVFS reproduction: energy-efficient prefetching with buffer disks.

A from-scratch Python implementation and evaluation harness for

    A. Manzanares et al., "Energy Efficient Prefetching with Buffer Disks
    for Cluster File Systems", ICPP 2010.

Quick start::

    import numpy as np
    from repro import EEVFSConfig, run_eevfs
    from repro.traces import generate_synthetic_trace
    from repro.traces.synthetic import SyntheticWorkload

    trace = generate_synthetic_trace(
        SyntheticWorkload(), rng=np.random.default_rng(1)
    )
    pf = run_eevfs(trace, EEVFSConfig(prefetch_enabled=True))
    npf = run_eevfs(trace, EEVFSConfig(prefetch_enabled=False))
    print(f"energy savings: {100 * (1 - pf.energy_j / npf.energy_j):.1f} %")

Package map
-----------
``repro.sim``         deterministic discrete-event simulation kernel
``repro.disk``        drive power states, specs, service and energy models
``repro.net``         NICs and the switching fabric
``repro.traces``      workload generators, trace files, the access log
``repro.core``        EEVFS itself (server, nodes, prefetch, power mgmt)
``repro.baselines``   NPF / always-on / MAID / PDC / oracle comparators
``repro.metrics``     paired comparisons and plain-text reporting
``repro.experiments`` every table and figure of the paper's evaluation
"""

from repro.core import (
    ClusterSpec,
    default_cluster,
    EEVFSCluster,
    EEVFSConfig,
    NodeSpec,
    run_eevfs,
    RunResult,
)

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "EEVFSCluster",
    "EEVFSConfig",
    "NodeSpec",
    "RunResult",
    "__version__",
    "default_cluster",
    "run_eevfs",
]
