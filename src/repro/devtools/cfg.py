"""Per-function control-flow graphs for simlint's flow-sensitive rules.

The v1 rules were single-pass AST visitors: every finding was a property
of one node in isolation.  The continuation-safety rules added for the
pooled-dispatch hot path (CONT002 in particular) need *ordering*
information -- "does statement B execute after statement A on some
path?" -- which requires a control-flow graph, not a tree walk.

:func:`build_cfg` lowers one ``ast.FunctionDef`` body into basic blocks
with successor edges.  The lowering is deliberately modest and fully
described here:

* ``if``/``elif``/``else`` branch and re-join;
* ``for``/``while`` get a loop-header block with a back edge from the
  body and an exit edge (the ``else:`` clause joins the exit path);
* ``break``/``continue`` edge to the innermost loop's exit/header;
* ``return``/``raise`` edge to the function's exit block;
* ``try`` is approximated conservatively: every statement in the body
  may transfer to each handler, and body, handlers and ``else`` all
  flow through ``finally``;
* ``with`` and ``match`` bodies are treated as straight-line /
  all-arms-join respectively.

Compound statements appear as an entry in the block *preceding* their
body (their header expressions -- an ``if`` test -- evaluate there),
except loops, which live in their own header block so the back edge
re-executes the target rebinding; suites live in dedicated blocks.

:meth:`FunctionCFG.walk_after` is the query the rules use: a forward
scan from a statement over everything reachable after it, with a
caller-supplied *kill* predicate that stops propagation along a path
(classic may-reach dataflow, one visit per block).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence


@dataclass
class Block:
    """One basic block: a statement sequence with successor edges."""

    id: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)

    def add_succ(self, block_id: int) -> None:
        if block_id not in self.succs:
            self.succs.append(block_id)


class FunctionCFG:
    """Control-flow graph of one function (or module) body."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self.entry: int = 0
        self.exit: int = 0
        #: statement identity -> (block id, index within block).
        self._where: dict[int, tuple[int, int]] = {}

    # -- construction helpers (used by the builder only) -------------------

    def new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks[block.id] = block
        return block

    def place(self, stmt: ast.stmt, block: Block) -> None:
        self._where[id(stmt)] = (block.id, len(block.stmts))
        block.stmts.append(stmt)

    # -- queries -----------------------------------------------------------

    def locate(self, stmt: ast.stmt) -> Optional[tuple[int, int]]:
        """(block id, index) of a placed statement; None if unknown."""
        return self._where.get(id(stmt))

    def walk_after(
        self,
        stmt: ast.stmt,
        kill: Callable[[ast.stmt], bool],
    ) -> Iterator[ast.stmt]:
        """Yield every statement that may execute after *stmt*.

        Propagation follows successor edges; a statement for which
        *kill* returns True is *not* yielded and stops the scan along
        that path (it is still re-reachable through other edges).  Each
        block is entered at most once from its start, so the scan
        terminates on cyclic graphs; the suffix of the starting block is
        scanned separately.
        """
        start = self.locate(stmt)
        if start is None:
            return
        block_id, index = start
        pending: list[int] = []
        seen: set[int] = set()

        def scan(stmts: Sequence[ast.stmt], succs: list[int]) -> Iterator[ast.stmt]:
            for s in stmts:
                if kill(s):
                    return
                yield s
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    pending.append(succ)

        first = self.blocks[block_id]
        yield from scan(first.stmts[index + 1 :], first.succs)
        while pending:
            block = self.blocks[pending.pop()]
            yield from scan(block.stmts, block.succs)

    def happens_after(self, first: ast.stmt, later: ast.stmt) -> bool:
        """Whether *later* can execute after *first* on some path."""
        for stmt in self.walk_after(first, kill=lambda s: False):
            if stmt is later:
                return True
        return False


class _Builder:
    """Recursive-descent lowering of a statement suite into blocks."""

    def __init__(self) -> None:
        self.cfg = FunctionCFG()
        #: (header block id, exit block id) per enclosing loop.
        self._loops: list[tuple[int, int]] = []
        #: Handler-entry block ids of enclosing try statements: any
        #: statement inside the body may transfer control there.
        self._handlers: list[list[int]] = []

    def build(self, body: Sequence[ast.stmt]) -> FunctionCFG:
        entry = self.cfg.new_block()
        self.cfg.entry = entry.id
        exit_block = self.cfg.new_block()
        self.cfg.exit = exit_block.id
        last = self._suite(body, entry)
        if last is not None:
            last.add_succ(exit_block.id)
        return self.cfg

    # Each _suite/_stmt returns the open block control falls out of, or
    # None when the path ends (return/raise/break/continue).
    def _suite(self, body: Sequence[ast.stmt], block: Block) -> Optional[Block]:
        current: Optional[Block] = block
        for stmt in body:
            if current is None:
                # Unreachable code after a jump; give it its own island
                # block so locate() still works.
                current = self.cfg.new_block()
            current = self._stmt(stmt, current)
        return current

    def _place(self, stmt: ast.stmt, block: Block) -> None:
        self.cfg.place(stmt, block)
        for handlers in self._handlers:
            for handler_id in handlers:
                block.add_succ(handler_id)

    def _stmt(self, stmt: ast.stmt, block: Block) -> Optional[Block]:
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            # The loop statement lives in its *header* block: the
            # target rebinds there on every iteration, so a scan
            # arriving via the back edge sees the rebinding before the
            # body (CONT002's kill depends on this).
            header = self.cfg.new_block()
            block.add_succ(header.id)
            self._place(stmt, header)
            return self._loop(stmt, header)
        self._place(stmt, block)
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, block)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, block)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_block = self.cfg.new_block()
            block.add_succ(body_block.id)
            return self._suite(stmt.body, body_block)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, block)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            block.add_succ(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                block.add_succ(self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                block.add_succ(self._loops[-1][0])
            return None
        return block

    def _if(self, stmt: ast.If, block: Block) -> Optional[Block]:
        join = self.cfg.new_block()
        then_block = self.cfg.new_block()
        block.add_succ(then_block.id)
        then_end = self._suite(stmt.body, then_block)
        if then_end is not None:
            then_end.add_succ(join.id)
        if stmt.orelse:
            else_block = self.cfg.new_block()
            block.add_succ(else_block.id)
            else_end = self._suite(stmt.orelse, else_block)
            if else_end is not None:
                else_end.add_succ(join.id)
        else:
            block.add_succ(join.id)
        return join

    def _loop(
        self, stmt: "ast.For | ast.AsyncFor | ast.While", header: Block
    ) -> Optional[Block]:
        exit_block = self.cfg.new_block()
        body_block = self.cfg.new_block()
        header.add_succ(body_block.id)
        header.add_succ(exit_block.id)
        self._loops.append((header.id, exit_block.id))
        body_end = self._suite(stmt.body, body_block)
        self._loops.pop()
        if body_end is not None:
            body_end.add_succ(header.id)
        if stmt.orelse:
            else_end = self._suite(stmt.orelse, exit_block)
            if else_end is None:
                return None
            return else_end
        return exit_block

    def _try(self, stmt: ast.Try, block: Block) -> Optional[Block]:
        join = self.cfg.new_block()
        handler_blocks = [self.cfg.new_block() for _ in stmt.handlers]
        self._handlers.append([b.id for b in handler_blocks])
        body_block = self.cfg.new_block()
        block.add_succ(body_block.id)
        body_end = self._suite(stmt.body, body_block)
        self._handlers.pop()
        open_ends: list[Block] = []
        if body_end is not None:
            if stmt.orelse:
                else_block = self.cfg.new_block()
                body_end.add_succ(else_block.id)
                else_end = self._suite(stmt.orelse, else_block)
                if else_end is not None:
                    open_ends.append(else_end)
            else:
                open_ends.append(body_end)
        for handler, handler_block in zip(stmt.handlers, handler_blocks, strict=True):
            handler_end = self._suite(handler.body, handler_block)
            if handler_end is not None:
                open_ends.append(handler_end)
        if stmt.finalbody:
            final_block = self.cfg.new_block()
            for end in open_ends:
                end.add_succ(final_block.id)
            # An exception path also reaches finally even when every
            # normal path jumped away.
            if not open_ends:
                block.add_succ(final_block.id)
            final_end = self._suite(stmt.finalbody, final_block)
            if final_end is not None:
                final_end.add_succ(join.id)
                return join
            return None
        for end in open_ends:
            end.add_succ(join.id)
        return join if open_ends else None

    def _match(self, stmt: ast.Match, block: Block) -> Optional[Block]:
        join = self.cfg.new_block()
        fell_through = False
        for case in stmt.cases:
            case_block = self.cfg.new_block()
            block.add_succ(case_block.id)
            case_end = self._suite(case.body, case_block)
            if case_end is not None:
                case_end.add_succ(join.id)
                fell_through = True
        # No guarantee any case matches: the statement may fall through.
        block.add_succ(join.id)
        return join if (fell_through or stmt.cases is not None) else join


def build_cfg(node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Module") -> FunctionCFG:
    """Lower *node*'s body into a :class:`FunctionCFG`."""
    return _Builder().build(node.body)
