"""The simlint rules.

Six rules guard the invariants the reproduction's results depend on:

========  ==============================================================
DET001    stochastic draws must flow through ``RandomStreams``
DET002    simulation code must not read the wall clock
DET003    no iteration over unordered collections in order-sensitive code
PAR001    nothing unpicklable in process-pool spec modules
SIM001    no swallowed broad exceptions around the event loop
SIM002    monitors and resources must declare ``__slots__``
========  ==============================================================

Every rule is a pure function of the AST (plus path scoping from
:class:`~repro.devtools.rules.LintConfig`); none execute the code under
analysis.  Static analysis is necessarily approximate -- each docstring
states exactly what is and is not detected, and
``# simlint: ignore[rule]`` waives confirmed false positives.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.rules import Edit, LintContext, path_in_scope, register, Rule

# -- shared import tracking ----------------------------------------------------


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names bound to *module* by ``import`` statements (``numpy`` ->
    {"numpy", "np"} for ``import numpy as np``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module or item.name.startswith(module + "."):
                    aliases.add((item.asname or item.name).split(".")[0])
    return aliases


def _from_imports(tree: ast.Module, module: str) -> dict[str, ast.ImportFrom]:
    """Local name -> ImportFrom node, for ``from <module> import ...``."""
    bound: dict[str, ast.ImportFrom] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for item in node.names:
                bound[item.asname or item.name] = node
    return bound


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (None otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# -- DET001: RandomStreams discipline ------------------------------------------

#: Functions of numpy's legacy *global* RandomState -- every call consumes
#: shared hidden state, so two call sites perturb each other.
_NP_LEGACY = frozenset(
    {
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "random_integers", "sample", "ranf", "bytes", "choice", "shuffle",
        "permutation", "uniform", "normal", "standard_normal", "exponential",
        "poisson", "binomial", "beta", "gamma", "lognormal", "pareto",
        "zipf", "get_state", "set_state",
    }
)


@register
class Det001RandomStreams(Rule):
    """DET001: stochastic draws must flow through ``RandomStreams``.

    Flags, everywhere except :attr:`LintConfig.rng_module`:

    * any import of the stdlib ``random`` module (its draws share one
      hidden global generator seeded from the OS);
    * calls to numpy's legacy global-state functions
      (``np.random.rand`` and friends);
    * ``np.random.default_rng()`` *without a seed argument* -- entropy
      from the OS makes the run unreproducible.  ``default_rng(seed)``
      with an explicit seed is allowed (trace generators take seeded
      generators by construction).
    """

    id = "DET001"
    summary = "stochastic draw outside RandomStreams"
    rationale = (
        "Paired experiments (PF vs NPF) and repeated same-seed runs are "
        "only comparable when every draw comes from a named, seeded "
        "stream; one stray global draw desynchronises every stream "
        "created after it."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return not path_in_scope(ctx.path, [ctx.config.rng_module])

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        tree = ctx.tree
        numpy_aliases = _module_aliases(tree, "numpy")

        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random" or item.name.startswith("random."):
                        yield self.diagnostic(
                            ctx,
                            node,
                            "stdlib `random` is a hidden global generator; "
                            "draw from a RandomStreams stream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.diagnostic(
                        ctx,
                        node,
                        "stdlib `random` is a hidden global generator; "
                        "draw from a RandomStreams stream instead",
                    )
                elif node.module == "numpy.random" and node.level == 0:
                    for item in node.names:
                        if item.name in _NP_LEGACY:
                            yield self.diagnostic(
                                ctx,
                                node,
                                f"numpy.random.{item.name} uses the legacy "
                                "global RandomState; use RandomStreams",
                            )

        # Attribute chains: np.random.<legacy>() and unseeded default_rng().
        for node in ast.walk(tree):
            dotted = None
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) < 3 or parts[-2] != "random":
                # Also catch `from numpy import random` -> random.rand().
                if not (len(parts) == 2 and parts[0] == "random"):
                    continue
            root = parts[0]
            leaf = parts[-1]
            np_random = (root in numpy_aliases and parts[1] == "random") or (
                root == "random"
                and "random" in _from_imports(tree, "numpy")
            )
            if not np_random:
                continue
            if isinstance(node, ast.Call) and leaf == "default_rng":
                if not node.args and not node.keywords:
                    yield self.diagnostic(
                        ctx,
                        node,
                        "unseeded np.random.default_rng() draws OS entropy; "
                        "pass a seed or use RandomStreams",
                    )
            elif isinstance(node, ast.Call) and leaf in _NP_LEGACY:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"np.random.{leaf} uses the legacy global RandomState; "
                    "use RandomStreams",
                )

        # `from numpy.random import default_rng` then a bare call.
        np_random_names = _from_imports(tree, "numpy.random")
        if "default_rng" in np_random_names:
            local = "default_rng"
            for node in ast.walk(tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == local
                    and not node.args
                    and not node.keywords
                ):
                    yield self.diagnostic(
                        ctx,
                        node,
                        "unseeded default_rng() draws OS entropy; "
                        "pass a seed or use RandomStreams",
                    )


# -- DET002: no wall clock -----------------------------------------------------

_TIME_FNS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    }
)
_DATETIME_FNS = frozenset({"now", "today", "utcnow"})


@register
class Det002WallClock(Rule):
    """DET002: simulation code must not read the wall clock.

    Simulated time is :attr:`Simulator.now`; host time leaking into the
    model makes results depend on machine load.  Flags ``time.time`` /
    ``perf_counter`` / ``monotonic`` / ``process_time`` (and ``_ns``
    variants, called or referenced), ``from time import`` of the same,
    and ``datetime.now()`` / ``today()`` / ``utcnow()``.  The perf
    harness, benchmarks and CLI timing
    (:attr:`LintConfig.wallclock_allowed`) are exempt -- they measure
    the simulator, not the simulation.
    """

    id = "DET002"
    summary = "wall-clock read in simulation code"
    rationale = (
        "docs/performance.md promises byte-identical metrics for a seed; "
        "any wall-clock dependence breaks that and hides real scheduling "
        "bugs behind machine noise."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return not path_in_scope(ctx.path, list(ctx.config.wallclock_allowed))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        tree = ctx.tree
        time_aliases = _module_aliases(tree, "time")
        datetime_aliases = _module_aliases(tree, "datetime")
        time_names = _from_imports(tree, "time")
        datetime_names = _from_imports(tree, "datetime")

        for local, node in time_names.items():
            for item in node.names:
                if item.name in _TIME_FNS and (item.asname or item.name) == local:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"time.{item.name} reads the wall clock; "
                        "use the simulation clock (sim.now)",
                    )

        for node in ast.walk(tree):
            dotted = _dotted(node) if isinstance(node, ast.Attribute) else None
            if dotted is None:
                continue
            parts = dotted.split(".")
            root, leaf = parts[0], parts[-1]
            if root in time_aliases and len(parts) == 2 and leaf in _TIME_FNS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"time.{leaf} reads the wall clock; "
                    "use the simulation clock (sim.now)",
                )
            elif leaf in _DATETIME_FNS:
                owner = parts[-2] if len(parts) >= 2 else ""
                from_datetime = owner in ("datetime", "date") and (
                    owner in datetime_names
                    or (len(parts) >= 3 and parts[-3] in datetime_aliases)
                )
                if from_datetime:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"datetime wall-clock read ({owner}.{leaf}); "
                        "simulation code must use sim.now",
                    )


# -- DET003: ordered iteration -------------------------------------------------


@register
class Det003UnorderedIteration(Rule):
    """DET003: no ``for`` loops over unordered collections in
    order-sensitive packages.

    In code that schedules events or accumulates metrics
    (:attr:`LintConfig.ordered_packages`), iterating a ``set`` (hash
    order, perturbed by ``PYTHONHASHSEED``) -- or a ``dict`` view whose
    insertion order may itself descend from one -- can reorder
    same-timestamp events between runs.  Flags ``for`` statements whose
    iterable is a set literal, a ``set(...)``/``frozenset(...)`` call,
    or a bare ``.values()``/``.keys()`` call; wrap the iterable in
    ``sorted(...)`` (the mechanical ``--fix``) or iterate an explicitly
    ordered structure.  Comprehensions feeding order-insensitive
    reducers (``sum``, ``min``, ``max``, ...) are deliberately not
    flagged.
    """

    id = "DET003"
    summary = "iteration over unordered collection in order-sensitive code"
    rationale = (
        "The engine breaks same-timestamp ties by insertion sequence; "
        "feeding it work in hash order silently couples results to "
        "PYTHONHASHSEED."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return path_in_scope(ctx.path, list(ctx.config.ordered_packages))

    @staticmethod
    def _unordered(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id in ("set", "frozenset"):
                return f"{expr.func.id}(...)"
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("values", "keys")
                and not expr.args
                and not expr.keywords
            ):
                return f".{expr.func.attr}() of a dict"
        return None

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                what = self._unordered(node.iter)
                if what is not None:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"for-loop over {what}: order feeds event scheduling "
                        "or metrics; wrap in sorted(...)",
                        fixable=True,
                    )

    def fix(self, ctx: LintContext, diagnostic: Diagnostic) -> Edit | None:
        # Rewrite `for X in ITER:` -> `for X in sorted(ITER):` when the
        # whole iterable sits on the diagnostic's line.
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.For, ast.AsyncFor))
                and node.lineno == diagnostic.line
                and self._unordered(node.iter) is not None
            ):
                it = node.iter
                if it.end_lineno != it.lineno:
                    return None
                line = ctx.lines[it.lineno - 1]
                start, end = it.col_offset, it.end_col_offset or len(line)
                new = f"{line[:start]}sorted({line[start:end]}){line[end:]}"
                return Edit(line=it.lineno, new_text=new)
        return None


# -- PAR001: picklable spec modules --------------------------------------------


@register
class Par001Unpicklable(Rule):
    """PAR001: no lambdas, closures, or local classes in modules whose
    objects cross the process-pool boundary.

    ``pickle`` serialises functions and classes *by qualified name*: a
    lambda, a function defined inside another function, or a class
    defined inside a function has no importable name, so a spec that
    captures one dies inside the worker with an opaque
    ``PicklingError``.  The rule flags every such definition in
    :attr:`LintConfig.picklable_modules` (the specs plus every module
    whose types their fields hold) -- stricter than strictly necessary,
    because "this lambda never ends up in instance state" is exactly the
    kind of claim that silently stops being true.
    """

    id = "PAR001"
    summary = "unpicklable construct in process-pool spec module"
    rationale = (
        "TraceSpec/JobSpec travel to ProcessPoolExecutor workers; "
        "pickling them must never depend on which fields happen to be "
        "populated."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return path_in_scope(ctx.path, list(ctx.config.picklable_modules))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        # Walk with an explicit stack so we know each node's enclosing
        # function (ast.walk loses parentage).
        def visit(node: ast.AST, in_function: bool) -> Iterator[Diagnostic]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.Lambda):
                    yield self.diagnostic(
                        ctx, child, "lambda cannot be pickled by qualified name"
                    )
                    yield from visit(child, in_function)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if in_function:
                        yield self.diagnostic(
                            ctx,
                            child,
                            f"closure `{child.name}` cannot be pickled "
                            "by qualified name",
                        )
                    yield from visit(child, True)
                elif isinstance(child, ast.ClassDef):
                    if in_function:
                        yield self.diagnostic(
                            ctx,
                            child,
                            f"local class `{child.name}` cannot be pickled "
                            "by qualified name",
                        )
                    yield from visit(child, in_function)
                else:
                    yield from visit(child, in_function)

        yield from visit(ctx.tree, False)


# -- SIM001: no swallowed broad exceptions -------------------------------------


def _is_broad(handler_type: ast.expr | None) -> bool:
    if handler_type is None:
        return True  # bare except
    if isinstance(handler_type, ast.Name):
        return handler_type.id in ("Exception", "BaseException")
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(el) for el in handler_type.elts)
    return False


def _swallows(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


@register
class Sim001SwallowedException(Rule):
    """SIM001: no bare ``except:`` (ever) and no swallowed broad
    ``except Exception: pass`` in event-loop-adjacent packages.

    A failed event the engine cannot surface is corruption that shows up
    as *wrong numbers*, not a crash.  Inside
    :attr:`LintConfig.event_loop_packages`, a bare ``except`` is flagged
    unconditionally (it also eats ``StopSimulation`` and
    ``KeyboardInterrupt``); ``except Exception`` / ``except
    BaseException`` is flagged only when the handler body does nothing
    but ``pass``.  Narrow handlers (``except Interrupt: pass``) are the
    supported idiom and stay legal.
    """

    id = "SIM001"
    summary = "swallowed broad exception near the event loop"
    rationale = (
        "Simulator.step re-raises unhandled event failures precisely so "
        "errors in processes cannot vanish; a broad swallow upstream "
        "defeats that guarantee."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return path_in_scope(ctx.path, list(ctx.config.event_loop_packages))

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    ctx,
                    node,
                    "bare `except:` can swallow event-loop corruption "
                    "(and StopSimulation); catch specific exceptions",
                )
            elif _is_broad(node.type) and _swallows(node.body):
                yield self.diagnostic(
                    ctx,
                    node,
                    "`except Exception: pass` swallows event-loop "
                    "corruption; handle or re-raise",
                )


# -- SIM002: slotted monitors and resources ------------------------------------


@register
class Sim002Slots(Rule):
    """SIM002: every class in the monitor/resource modules declares
    ``__slots__``.

    The engine hot-path work (PR 3) cut per-instance memory by slotting
    monitors and resources -- one ``__dict__``-bearing class reintroduces
    a dict per request on the hottest allocation sites.  The rule checks
    the modules in :attr:`LintConfig.slotted_modules`; the ``--fix``
    rewrite inserts a ``__slots__`` tuple derived from the attributes
    the class assigns on ``self``.
    """

    id = "SIM002"
    summary = "missing __slots__ on monitor/resource class"
    rationale = (
        "docs/performance.md's memory numbers assume slotted hot-path "
        "objects; an unslotted subclass silently regresses them."
    )

    def applies_to(self, ctx: LintContext) -> bool:
        return path_in_scope(ctx.path, list(ctx.config.slotted_modules))

    @staticmethod
    def _declares_slots(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        return True
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                    return True
        return False

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and not self._declares_slots(node):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"class `{node.name}` must declare __slots__ "
                    "(hot-path memory guarantee)",
                    fixable=True,
                )

    @staticmethod
    def _self_attrs(cls: ast.ClassDef) -> list[str]:
        seen: list[str] = []
        for node in ast.walk(cls):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in seen
                ):
                    seen.append(target.attr)
        return seen

    def fix(self, ctx: LintContext, diagnostic: Diagnostic) -> Edit | None:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.lineno == diagnostic.line
                and not self._declares_slots(node)
            ):
                attrs = self._self_attrs(node)
                first = node.body[0]
                indent = " " * first.col_offset
                at = first.lineno
                if (
                    isinstance(first, ast.Expr)
                    and isinstance(first.value, ast.Constant)
                    and isinstance(first.value.value, str)
                ):
                    at = (first.end_lineno or first.lineno) + 1
                items = ", ".join(f'"{a}"' for a in attrs)
                if len(attrs) == 1:
                    items += ","
                return Edit(
                    line=at, new_text=f"{indent}__slots__ = ({items})", insert=True
                )
        return None
