"""Cross-module symbol table for simlint's interprocedural rules.

The continuation rules need one question answered across module
boundaries: *when a callable is passed into this call, does it end up
scheduled or stored?*  ``telemetry.gauge(name, fn)`` keeps ``fn``
forever; ``sim.call_soon(fn)`` schedules it; a plain ``max(a, b)`` does
neither.  A per-file visitor cannot know -- the callee usually lives in
another module.

:class:`ProjectModel` is the answer: every function and method of every
parsed file, summarised once as a :class:`FunctionInfo` --

* does the body call a schedule primitive directly
  (:attr:`~repro.devtools.rules.LintConfig.schedule_primitives`)?
* which positional parameters are forwarded into a callback sink
  (``call_soon(param)``, ``call_later(delay, param)``)?
* which positional parameters are *retained* -- stored on ``self``,
  appended to a container, kept in a dict?

Call sites are resolved by **bare name**: a call ``x.gauge(...)`` is
matched against every known function/method named ``gauge`` and their
summaries are unioned.  That is deliberately conservative in both
directions -- it needs no import resolution or type inference, works on
single-file fixtures, and over-approximates rather than silently
missing a sink.  Methods drop their ``self``/``cls`` parameter so
call-site argument positions line up with summary indices.

The model is built once per :func:`~repro.devtools.runner.lint_paths`
run (phase one) and shared by every rule through
:attr:`LintContext.project` (phase two); single-file entry points build
a one-module model so rules never special-case its absence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

#: Attribute-call receivers that retain their argument: ``x.append(fn)``
#: stores ``fn`` in ``x``.  ``add_event_hook``/``register`` are the
#: engine/observability retention verbs.
_RETAINING_METHODS = frozenset(
    {"append", "appendleft", "add", "register", "setdefault", "add_event_hook"}
)


def module_name_for_path(path: str) -> str:
    """Dotted module name of *path*, anchored at the ``repro`` package.

    ``.../src/repro/sim/engine.py`` -> ``repro.sim.engine``; fixture
    trees that mimic the layout (``tests/devtools/fixtures/repro/...``)
    resolve the same way.  Files outside any ``repro`` tree fall back to
    their stem, which keeps bare-name resolution working.
    """
    posix = path.replace("\\", "/")
    parts = posix.split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            tail = parts[i:-1] + ([] if stem == "__init__" else [stem])
            return ".".join(tail)
    return stem


@dataclass(frozen=True)
class FunctionInfo:
    """Flow summary of one function or method."""

    module: str
    qualname: str
    #: Bare name used for call-site resolution.
    name: str
    #: Positional parameter names, ``self``/``cls`` dropped for methods.
    params: tuple[str, ...]
    #: Body contains a direct call to a schedule primitive.
    schedules_directly: bool
    #: Indices into :attr:`params` forwarded into a callback sink.
    scheduled_params: frozenset[int]
    #: Indices into :attr:`params` stored past the call (attribute/
    #: subscript assignment, retaining method call).
    retained_params: frozenset[int]
    #: Bare names of everything the body calls (one transitive hop for
    #: the rules that want it).
    calls: frozenset[str]
    line: int


@dataclass
class ModuleInfo:
    """One parsed file in the project model."""

    name: str
    path: str
    tree: ast.Module
    functions: list[FunctionInfo] = field(default_factory=list)


class ProjectModel:
    """Bare-name-indexed view over every function of every module."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self._by_name: dict[str, list[FunctionInfo]] = {}

    def add_module(self, info: ModuleInfo) -> None:
        self.modules[info.name] = info
        for fn in info.functions:
            self._by_name.setdefault(fn.name, []).append(fn)

    def functions_named(self, bare: str) -> list[FunctionInfo]:
        """Every known function/method with bare name *bare*."""
        return self._by_name.get(bare, [])

    def callback_param_positions(self, bare: str) -> frozenset[int]:
        """Union of scheduled+retained parameter indices over every
        function named *bare* -- 'if I pass a callable here, can it
        outlive the call?'."""
        positions: set[int] = set()
        for fn in self.functions_named(bare):
            positions |= fn.scheduled_params | fn.retained_params
        return frozenset(positions)

    def schedules(self, bare: str, depth: int = 1) -> bool:
        """Whether calling *bare* can schedule an event, looking through
        at most *depth* levels of known callees."""
        return self._schedules(bare, depth, frozenset())

    def _schedules(self, bare: str, depth: int, seen: frozenset[str]) -> bool:
        if bare in seen:
            return False
        for fn in self.functions_named(bare):
            if fn.schedules_directly:
                return True
        if depth <= 0:
            return False
        seen = seen | {bare}
        for fn in self.functions_named(bare):
            for callee in fn.calls:
                if self._schedules(callee, depth - 1, seen):
                    return True
        return False


# -- summary extraction --------------------------------------------------------


def callee_bare_name(call: ast.Call) -> str | None:
    """Bare name a call resolves under (``x.y.z(...)`` -> ``z``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _positional_params(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    *,
    is_method: bool,
) -> tuple[str, ...]:
    names = [a.arg for a in fn.args.posonlyargs + fn.args.args]
    if is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def _walk_body(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> Iterator[ast.AST]:
    """Walk *fn*'s body without descending into nested def/class scopes
    (their effects are summarised separately)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _summarise(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    module: str,
    qualname: str,
    *,
    is_method: bool,
    schedule_primitives: Sequence[str],
    callback_sinks: Sequence[tuple[str, int]],
) -> FunctionInfo:
    params = _positional_params(fn, is_method=is_method)
    index_of = {name: i for i, name in enumerate(params)}
    sink_pos = dict(callback_sinks)
    primitives = set(schedule_primitives)

    schedules_directly = False
    scheduled: set[int] = set()
    retained: set[int] = set()
    calls: set[str] = set()

    def note_param(name: str, into: set[int]) -> None:
        idx = index_of.get(name)
        if idx is not None:
            into.add(idx)

    for node in _walk_body(fn):
        if isinstance(node, ast.Call):
            bare = callee_bare_name(node)
            if bare is None:
                continue
            calls.add(bare)
            if bare in primitives:
                schedules_directly = True
            pos = sink_pos.get(bare)
            if pos is not None and pos < len(node.args):
                arg = node.args[pos]
                if isinstance(arg, ast.Name):
                    note_param(arg.id, scheduled)
            if isinstance(node.func, ast.Attribute) and bare in _RETAINING_METHODS:
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        note_param(arg.id, retained)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                list(node.targets) if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            stores = any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
            )
            if stores and isinstance(value, ast.Name):
                note_param(value.id, retained)

    return FunctionInfo(
        module=module,
        qualname=qualname,
        name=fn.name,
        params=params,
        schedules_directly=schedules_directly,
        scheduled_params=frozenset(scheduled),
        retained_params=frozenset(retained),
        calls=frozenset(calls),
        line=fn.lineno,
    )


def summarise_module(
    path: str,
    tree: ast.Module,
    *,
    schedule_primitives: Sequence[str],
    callback_sinks: Sequence[tuple[str, int]],
) -> ModuleInfo:
    """Phase-one pass over one parsed file."""
    module = module_name_for_path(path)
    info = ModuleInfo(name=module, path=path.replace("\\", "/"), tree=tree)

    def visit(node: ast.AST, prefix: str, in_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                info.functions.append(
                    _summarise(
                        child,
                        module,
                        qualname,
                        is_method=in_class,
                        schedule_primitives=schedule_primitives,
                        callback_sinks=callback_sinks,
                    )
                )
                visit(child, f"{qualname}.<locals>.", False)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", True)
            else:
                visit(child, prefix, in_class)

    visit(tree, "", False)
    return info


def build_project(
    parsed: Sequence[tuple[str, ast.Module]],
    *,
    schedule_primitives: Sequence[str],
    callback_sinks: Sequence[tuple[str, int]],
) -> ProjectModel:
    """Assemble the cross-module model from (path, tree) pairs."""
    project = ProjectModel()
    for path, tree in parsed:
        project.add_module(
            summarise_module(
                path,
                tree,
                schedule_primitives=schedule_primitives,
                callback_sinks=callback_sinks,
            )
        )
    return project
