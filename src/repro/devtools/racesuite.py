"""Whole-model schedule-race suite: the ``eevfs lint --races`` backend.

The engine's chaos scheduler (:meth:`~repro.sim.engine.Simulator.
set_lane_perturbation`) explores alternative-but-legal dispatch orders
within same-``(time, priority)`` windows.  This module drives the full
EEVFS stack through it across six representative scenarios -- one point
from each of the four Table-II sweeps, the metadata-plane leader-crash
drill, and an online-mode run -- and decides, per scenario, whether
anything *illegitimate* depends on dispatch order.

What counts as illegitimate is deliberate.  Whole-cluster metrics are
**not** expected to be bit-invariant under perturbation: synthetic
arrival times are quantised, so same-timestamp requests exist and the
engine's FIFO tie-break decides who is served first -- a legitimate
modelling choice whose knock-on effects (energies, latencies, hit
splits) compound over the run.  What a correct model must preserve
under *every* legal schedule is:

* **completion** -- the run finishes without an exception;
* **conservation** -- every request is accounted for exactly once:
  requests served, reads (buffer hits + data-disk hits), writes
  (buffered + direct), failures, the per-component latency sample
  counts and the node roster are all identical across orderings;
* **reproducibility** -- a perturbed schedule is itself deterministic:
  the same perturbation seed twice gives bit-identical metrics.

A use-after-recycle, a dict-order handler race, or an RNG stream keyed
on iteration order breaks one of these three long before anyone reads a
figure.  Observed drift in the *sensitive* metrics is reported (so a
suspicious jump is visible in review) but does not fail the suite.

The suite's JSON output contains only schedule-invariant material --
scenario names, conservation fingerprints, statuses -- so CI can run it
under two different perturbation seeds and ``cmp`` the outputs byte for
byte.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence

from repro.core.config import EEVFSConfig
from repro.core.filesystem import run_eevfs, RunResult
from repro.experiments.metaplane import (
    drill_config,
    drill_trace,
    leader_crash_schedule,
)
from repro.sim.engine import Simulator
from repro.traces.model import Trace
from repro.traces.synthetic import MB, SyntheticWorkload, generate_synthetic_trace

#: Default perturbation seeds: two is enough to catch order dependence
#: in practice while keeping the suite inside a CI smoke budget.
DEFAULT_RACE_SEEDS = (101, 303)

#: Default request count per scenario -- small enough that all six
#: scenarios finish in seconds, large enough to exercise contention,
#: prefetch, destaging and (for the drill) a full leader-crash cycle.
DEFAULT_N_REQUESTS = 150


@dataclasses.dataclass(frozen=True)
class RaceScenario:
    """One named model build the suite perturbs."""

    name: str
    trace: Trace
    config: EEVFSConfig
    faults: object = None  # Optional[FaultSchedule]; object keeps it slim


@dataclasses.dataclass
class ScenarioReport:
    """Outcome of one scenario across baseline + all perturbation seeds."""

    name: str
    status: str  # "ok" | "race" | "error"
    served: int
    #: Canonical conservation fingerprint (identical across seeds if ok).
    conservation: str
    #: Human-readable notes: conservation diffs, reproducibility
    #: failures, or the exception that killed a run.
    problems: List[str] = dataclasses.field(default_factory=list)
    #: Observed (legitimate) drift of schedule-sensitive metrics across
    #: seeds, as max relative deviation from baseline.  Informational.
    drift: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclasses.dataclass
class RaceReport:
    """The whole suite's outcome."""

    seeds: List[int]
    scenarios: List[ScenarioReport]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.scenarios)


def conservation_fingerprint(result: RunResult) -> str:
    """Canonical JSON of everything that must survive *any* legal
    reordering of same-``(time, priority)`` dispatch windows."""
    payload = {
        "served": result.response_times.count,
        "failed": result.requests_failed,
        "reads": result.buffer_hits + result.data_disk_hits,
        "writes": result.writes_buffered + result.writes_direct,
        "latency_samples": {
            name: stat.count
            for name, stat in sorted(result.latency_components.items())
        },
        "nodes": [node.name for node in result.nodes],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def metrics_fingerprint(result: RunResult) -> str:
    """Canonical JSON of the *full* metric surface, floats via ``repr``
    (bit-exact round-trip).  Used for same-seed reproducibility: two
    runs under the same perturbation seed must match byte for byte."""
    payload = {
        "end_s": repr(result.end_s),
        "energy_j": repr(result.energy_j),
        "energy_with_setup_j": repr(result.energy_with_setup_j),
        "server_energy_j": repr(result.server_energy_j),
        "transitions": result.transitions,
        "buffer_hits": result.buffer_hits,
        "data_disk_hits": result.data_disk_hits,
        "writes_buffered": result.writes_buffered,
        "writes_direct": result.writes_direct,
        "writes_destaged": result.writes_destaged,
        "prefetch_files_copied": result.prefetch_files_copied,
        "prefetch_bytes_copied": result.prefetch_bytes_copied,
        "requests_failed": result.requests_failed,
        "response_mean": repr(result.response_times.mean),
        "nodes": [
            [node.name, repr(node.base_energy_j), repr(node.disk_energy_j)]
            for node in result.nodes
        ],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def default_scenarios(n_requests: int = DEFAULT_N_REQUESTS) -> List[RaceScenario]:
    """The six stock scenarios: one representative point per Table-II
    sweep, the metaplane drill, and an online-mode run."""

    def synthetic(**overrides: object) -> Trace:
        workload = SyntheticWorkload(n_requests=n_requests, write_fraction=0.2)
        workload = dataclasses.replace(workload, **overrides)  # type: ignore[arg-type]
        return generate_synthetic_trace(workload)

    prefetch = EEVFSConfig()
    scenarios = [
        # Table II, one point per sweep (PF config throughout: the
        # prefetch path is where the continuation traffic lives).
        RaceScenario("sweep:data_size=20MB", synthetic(data_size_bytes=20 * MB), prefetch),
        RaceScenario("sweep:mu=500", synthetic(mu=500.0), prefetch),
        RaceScenario(
            "sweep:inter_arrival=350ms", synthetic(inter_arrival_s=0.350), prefetch
        ),
        RaceScenario(
            "sweep:prefetch_count=100",
            synthetic(),
            dataclasses.replace(prefetch, prefetch_files=100),
        ),
    ]
    # Metadata-plane drill: sharded consensus plane, every shard leader
    # crashed once mid-replay, patient client retries.
    meta_config = drill_config(replicas=3)
    meta_trace = drill_trace(n_requests=n_requests)
    scenarios.append(
        RaceScenario(
            "metaplane:leader-crash",
            meta_trace,
            meta_config,
            # Compressed relative to the stock drill so all four crashes
            # and repairs land inside the shorter race-suite replay.
            faults=leader_crash_schedule(
                meta_config.metadata_shards,
                first_at=15.0,
                spacing=25.0,
                repair_after=10.0,
            ),
        )
    )
    # Online mode: streaming estimator + feedback controller replanning.
    scenarios.append(
        RaceScenario("online:adaptive", synthetic(), EEVFSConfig(online_mode=True))
    )
    return scenarios


def _run(scenario: RaceScenario, seed: Optional[int]) -> RunResult:
    """One scenario run, optionally under the chaos scheduler.

    The perturbation seed is installed class-wide for the duration of
    the call so every simulator the cluster build creates (there is
    exactly one, but the suite should not care) starts perturbed.
    """
    previous = Simulator.default_lane_perturbation_seed
    Simulator.default_lane_perturbation_seed = seed
    try:
        return run_eevfs(
            scenario.trace,
            scenario.config,
            seed=7,
            faults=scenario.faults,  # type: ignore[arg-type]
        )
    finally:
        Simulator.default_lane_perturbation_seed = previous


_DRIFT_METRICS = ("energy_j", "end_s", "transitions", "buffer_hits")


def _drift(baseline: RunResult, perturbed: RunResult) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for name in _DRIFT_METRICS:
        base = float(getattr(baseline, name))
        other = float(getattr(perturbed, name))
        out[name] = abs(other - base) / abs(base) if base else abs(other - base)
    return out


def run_scenario(
    scenario: RaceScenario, seeds: Sequence[int] = DEFAULT_RACE_SEEDS
) -> ScenarioReport:
    """Baseline + two runs per perturbation seed; classify the outcome."""
    try:
        baseline = _run(scenario, None)
    except Exception as exc:  # noqa: BLE001 - the *point* is to catch model crashes
        return ScenarioReport(
            name=scenario.name,
            status="error",
            served=0,
            conservation="",
            problems=[f"baseline run raised {type(exc).__name__}: {exc}"],
        )
    report = ScenarioReport(
        name=scenario.name,
        status="ok",
        served=baseline.response_times.count,
        conservation=conservation_fingerprint(baseline),
    )
    drift: Dict[str, float] = {}
    for seed in seeds:
        try:
            first = _run(scenario, seed)
            second = _run(scenario, seed)
        except Exception as exc:  # noqa: BLE001
            report.status = "race"
            report.problems.append(
                f"seed {seed}: perturbed run raised {type(exc).__name__}: {exc}"
            )
            continue
        if metrics_fingerprint(first) != metrics_fingerprint(second):
            report.status = "race"
            report.problems.append(
                f"seed {seed}: perturbed schedule is not reproducible "
                f"(same seed, different metrics)"
            )
        conservation = conservation_fingerprint(first)
        if conservation != report.conservation:
            report.status = "race"
            report.problems.append(
                f"seed {seed}: conservation broken: {conservation} "
                f"!= baseline {report.conservation}"
            )
        for name, value in _drift(baseline, first).items():
            drift[name] = max(drift.get(name, 0.0), value)
    report.drift = drift
    return report


def run_race_suite(
    seeds: Sequence[int] = DEFAULT_RACE_SEEDS,
    n_requests: int = DEFAULT_N_REQUESTS,
    scenarios: Optional[Sequence[RaceScenario]] = None,
) -> RaceReport:
    """Run every scenario through the chaos scheduler."""
    stock = scenarios if scenarios is not None else default_scenarios(n_requests)
    return RaceReport(
        seeds=list(seeds), scenarios=[run_scenario(s, seeds) for s in stock]
    )


def render_race_text(report: RaceReport) -> str:
    """Human-readable suite report (one block per scenario)."""
    lines: List[str] = []
    for scenario in report.scenarios:
        lines.append(f"{scenario.status.upper():5s} {scenario.name}")
        lines.append(f"      conservation {scenario.conservation}")
        if scenario.drift:
            drifts = ", ".join(
                f"{name}={value:.2%}" for name, value in sorted(scenario.drift.items())
            )
            lines.append(f"      sensitive-metric drift (expected): {drifts}")
        for problem in scenario.problems:
            lines.append(f"      ! {problem}")
    verdict = "no schedule races detected" if report.ok else "SCHEDULE RACES DETECTED"
    lines.append(
        f"{len(report.scenarios)} scenarios x {len(report.seeds)} perturbation "
        f"seeds: {verdict}"
    )
    return "\n".join(lines)


def render_race_json(report: RaceReport) -> str:
    """Canonical, schedule-invariant JSON: byte-identical across runs
    with *different* perturbation seeds unless a scenario misbehaves.

    The seeds themselves, the drift percentages and problem texts are
    deliberately excluded -- CI runs the suite twice with different
    seeds and ``cmp``s the two outputs.
    """
    payload = {
        "scenarios": [
            {
                "name": s.name,
                "status": s.status,
                "conservation": json.loads(s.conservation) if s.conservation else None,
            }
            for s in report.scenarios
        ],
        "ok": report.ok,
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"
