"""Runtime determinism sanitizer: event-stream fingerprints.

Static analysis (simlint) catches the *sources* of nondeterminism it can
see; this module catches the ones it can't.  An
:class:`EventStreamHasher` attaches to a
:class:`~repro.sim.engine.Simulator` via the engine's event hook and
folds every processed event -- its timestamp, outcome, and type -- into a
running BLAKE2 digest.  Two runs of the same model with the same seed
must produce byte-identical digests; :func:`assert_deterministic` builds
and runs a model repeatedly and raises :class:`DeterminismError` with
both digests when they diverge.

The hook is opt-in: an unobserved run keeps the engine's inlined hot
loop and pays nothing (see :meth:`Simulator.add_event_hook`).  Because
the engine dispatches to *all* installed hooks, the hasher coexists with
other observers -- notably the :mod:`repro.obs` tracer -- on the same
run.

The second half of this module is the **schedule-perturbation
sanitizer**: it pairs the engine's chaos scheduler
(:meth:`Simulator.set_lane_perturbation`) with an order-insensitive
:class:`TimeBucketHasher` to decide whether a model's behaviour depends
on the engine's FIFO tie-breaking within same-``(time, priority)``
dispatch windows.  A model with no such dependence produces the same
per-timestamp event multisets under every legal reordering, so its
bucket digest is invariant across perturbation seeds;
:func:`assert_schedule_invariant` raises :class:`ScheduleRaceError`
when it is not.  Full EEVFS runs are *expected* to be
schedule-sensitive at contention points (same-quantum request arrivals
are served in tie-break order), which is why
:mod:`repro.devtools.racesuite` checks conservation invariants rather
than raw digest equality for whole-cluster scenarios.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from typing import Any, Callable, Iterable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event

_PACK = struct.Struct("<dB").pack
_PACK_BUCKET = struct.Struct("<dQQQ").pack


class DeterminismError(AssertionError):
    """Two same-seed runs produced different event-stream digests."""


class ScheduleRaceError(DeterminismError):
    """A model's behaviour depends on same-``(time, priority)`` dispatch
    order: a legal schedule perturbation changed its per-timestamp event
    multisets."""


class EventStreamHasher:
    """Folds a simulator's processed-event stream into one digest.

    The fingerprint covers, per event and in processing order: the
    simulated timestamp, whether the event succeeded, and the event's
    type name.  That is exactly the engine's observable schedule -- two
    runs with equal digests processed the same kinds of events at the
    same times in the same order.  Payload values are deliberately
    excluded: they may hold unhashable or address-dependent objects, and
    any payload difference that matters must change downstream event
    timing anyway.
    """

    __slots__ = ("_digest", "_count")

    def __init__(self) -> None:
        self._digest = hashlib.blake2b(digest_size=16)
        self._count = 0

    def __call__(self, now: float, event: Event) -> None:
        self._digest.update(_PACK(now, 1 if event._ok else 0))
        self._digest.update(type(event).__name__.encode("ascii"))
        self._count += 1

    @property
    def events_hashed(self) -> int:
        """Number of events folded into the digest so far."""
        return self._count

    def hexdigest(self) -> str:
        """Digest of the stream observed so far (non-destructive)."""
        return self._digest.hexdigest()

    def attach(self, sim: Simulator) -> "EventStreamHasher":
        """Add this hasher to *sim*'s event hooks (returns self).

        Other observers (e.g. an :mod:`repro.obs` tracer) stay installed;
        the engine dispatches to every hook in installation order.
        """
        sim.add_event_hook(self)
        return self

    def detach(self, sim: Simulator) -> None:
        """Remove this hasher from *sim*'s event hooks (idempotent)."""
        sim.remove_event_hook(self)


class TimeBucketHasher:
    """Event-stream digest that is *order-insensitive within* each
    timestamp but strictly ordered *across* timestamps.

    Per event the hasher derives a 64-bit word from ``(now, ok, type
    name)`` and folds it into the current timestamp's bucket with two
    commutative accumulators (modular sum and xor).  When the clock
    advances, the finished bucket -- ``(time, count, sum, xor)`` -- is
    folded into an ordered outer BLAKE2 digest.  Two runs have equal
    digests iff they process the same *multiset* of events at every
    timestamp, regardless of intra-timestamp order: exactly the
    invariant a race-free model must keep under the chaos scheduler's
    legal same-``(time, priority)`` reorderings, while any cross-time
    drift (an event migrating to a different timestamp) still changes
    the digest.
    """

    __slots__ = ("_outer", "_now", "_sum", "_xor", "_in_bucket", "_count")

    _MASK64 = (1 << 64) - 1

    def __init__(self) -> None:
        self._outer = hashlib.blake2b(digest_size=16)
        self._now: Optional[float] = None
        self._sum = 0
        self._xor = 0
        self._in_bucket = 0
        self._count = 0

    def __call__(self, now: float, event: Event) -> None:
        if self._now is not None and now != self._now:
            self._flush_into(self._outer)
            self._sum = 0
            self._xor = 0
            self._in_bucket = 0
        self._now = now
        inner = hashlib.blake2b(_PACK(now, 1 if event._ok else 0), digest_size=8)
        inner.update(type(event).__name__.encode("ascii"))
        word = int.from_bytes(inner.digest(), "little")
        self._sum = (self._sum + word) & self._MASK64
        self._xor ^= word
        self._in_bucket += 1
        self._count += 1

    def _flush_into(self, digest: "hashlib._Hash") -> None:
        assert self._now is not None
        digest.update(_PACK_BUCKET(self._now, self._in_bucket, self._sum, self._xor))

    @property
    def events_hashed(self) -> int:
        """Number of events folded into the digest so far."""
        return self._count

    def hexdigest(self) -> str:
        """Digest of the stream observed so far (non-destructive).

        The still-open bucket is folded into a *copy* of the outer
        digest, so the hasher can keep accumulating afterwards.
        """
        outer = self._outer.copy()
        if self._in_bucket:
            self._flush_into(outer)
        return outer.hexdigest()

    def attach(self, sim: Simulator) -> "TimeBucketHasher":
        """Add this hasher to *sim*'s event hooks (returns self)."""
        sim.add_event_hook(self)
        return self

    def detach(self, sim: Simulator) -> None:
        """Remove this hasher from *sim*'s event hooks (idempotent)."""
        sim.remove_event_hook(self)


def digest_run(
    build: Callable[[], Simulator],
    until: Optional[float] = None,
) -> tuple[str, int]:
    """Build a simulator, run it observed, and fingerprint the run.

    *build* must construct a fresh simulator with all model processes
    already started (seeding included).  Returns ``(hexdigest,
    events_hashed)``.
    """
    sim = build()
    hasher = EventStreamHasher().attach(sim)
    try:
        if until is None:
            sim.run()
        else:
            sim.run(until=until)
    finally:
        hasher.detach(sim)
    return hasher.hexdigest(), hasher.events_hashed


def assert_deterministic(
    build: Callable[[], Simulator],
    runs: int = 2,
    until: Optional[float] = None,
    label: str = "model",
) -> str:
    """Run *build* ``runs`` times and require identical digests.

    Returns the common digest; raises :class:`DeterminismError` naming
    the first diverging run otherwise.  Each invocation of *build* must
    recreate the model from scratch (fresh Simulator, fresh seeded
    streams) -- shared mutable state between runs defeats the point.
    """
    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare (got {runs})")
    reference: Optional[tuple[str, int]] = None
    for index in range(runs):
        outcome = digest_run(build, until=until)
        if reference is None:
            reference = outcome
        elif outcome != reference:
            raise DeterminismError(
                f"{label}: run {index + 1} diverged from run 1: "
                f"digest {outcome[0]} ({outcome[1]} events) != "
                f"{reference[0]} ({reference[1]} events)"
            )
    assert reference is not None
    return reference[0]


@dataclasses.dataclass(frozen=True)
class ScheduleProbe:
    """Fingerprints of one (possibly chaos-scheduled) run.

    ``stream_digest`` is the fully ordered :class:`EventStreamHasher`
    fingerprint; ``bucket_digest`` the order-insensitive
    :class:`TimeBucketHasher` one; ``picks`` counts how many dispatch
    windows actually offered the perturbation a choice (0 for an
    unperturbed run -- and for a perturbed run that never saw a window
    wider than one event, in which case invariance holds vacuously).
    """

    seed: Optional[int]
    stream_digest: str
    bucket_digest: str
    events: int
    picks: int


def perturbed_digest_run(
    build: Callable[[], Simulator],
    seed: Optional[int],
    until: Optional[float] = None,
) -> ScheduleProbe:
    """Build a simulator, run it under the chaos scheduler, fingerprint it.

    *build* must construct (not run) a fresh, fully seeded model; the
    perturbation is installed on the returned simulator before any event
    is dispatched.  ``seed=None`` runs unperturbed and serves as the
    baseline.
    """
    sim = build()
    if seed is not None:
        sim.set_lane_perturbation(seed)
    stream = EventStreamHasher().attach(sim)
    buckets = TimeBucketHasher().attach(sim)
    try:
        if until is None:
            sim.run()
        else:
            sim.run(until=until)
    finally:
        stream.detach(sim)
        buckets.detach(sim)
    perturb = sim.lane_perturbation
    if sim.tracer is not None:
        # Observed runs get a marker span so a perturbed trace can never
        # be mistaken for a production one.
        sim.tracer.instant(
            "sanitizer.perturbation",
            track="sanitizer",
            seed=seed,
            picks=perturb.picks if perturb is not None else 0,
            events=stream.events_hashed,
        )
    return ScheduleProbe(
        seed=seed,
        stream_digest=stream.hexdigest(),
        bucket_digest=buckets.hexdigest(),
        events=stream.events_hashed,
        picks=perturb.picks if perturb is not None else 0,
    )


def assert_schedule_invariant(
    build: Callable[[], Simulator],
    seeds: Iterable[int] = (101, 303),
    until: Optional[float] = None,
    label: str = "model",
) -> str:
    """Assert that *build*'s model is independent of dispatch order.

    Runs the model unperturbed, then twice per perturbation seed, and
    requires that (a) each perturbed schedule is reproducible (same
    seed, same ordered stream digest) and (b) every run's time-bucket
    digest matches the baseline -- i.e. legal same-``(time, priority)``
    reorderings change nothing observable.  Raises
    :class:`DeterminismError` for (a) and :class:`ScheduleRaceError`
    for (b); returns the common bucket digest.

    This is the unit-level invariant for models without contention.
    Whole-cluster EEVFS runs legitimately break (b) at queueing
    tie-breaks; for those use :mod:`repro.devtools.racesuite`, which
    checks conservation invariants instead.
    """
    baseline = perturbed_digest_run(build, None, until=until)
    for seed in seeds:
        first = perturbed_digest_run(build, seed, until=until)
        second = perturbed_digest_run(build, seed, until=until)
        if first.stream_digest != second.stream_digest:
            raise DeterminismError(
                f"{label}: chaos schedule not reproducible under seed "
                f"{seed}: {first.stream_digest} != {second.stream_digest}"
            )
        if first.bucket_digest != baseline.bucket_digest:
            raise ScheduleRaceError(
                f"{label}: schedule-dependent behaviour under perturbation "
                f"seed {seed}: time-bucket digest {first.bucket_digest} "
                f"({first.events} events, {first.picks} perturbed picks) != "
                f"baseline {baseline.bucket_digest} ({baseline.events} events)"
            )
    return baseline.bucket_digest


def _self_check() -> None:  # pragma: no cover - manual smoke hook
    """Tiny built-in smoke test (``python -m repro.devtools.sanitizer``)."""

    def build() -> Simulator:
        sim = Simulator()

        def worker(sim: Simulator) -> Any:
            for _ in range(10):
                yield sim.timeout(1.0)

        sim.process(worker(sim))
        return sim

    digest = assert_deterministic(build, runs=3)
    print(f"ok: 3 identical runs, digest {digest}")


if __name__ == "__main__":  # pragma: no cover
    _self_check()
