"""Runtime determinism sanitizer: event-stream fingerprints.

Static analysis (simlint) catches the *sources* of nondeterminism it can
see; this module catches the ones it can't.  An
:class:`EventStreamHasher` attaches to a
:class:`~repro.sim.engine.Simulator` via the engine's event hook and
folds every processed event -- its timestamp, outcome, and type -- into a
running BLAKE2 digest.  Two runs of the same model with the same seed
must produce byte-identical digests; :func:`assert_deterministic` builds
and runs a model repeatedly and raises :class:`DeterminismError` with
both digests when they diverge.

The hook is opt-in: an unobserved run keeps the engine's inlined hot
loop and pays nothing (see :meth:`Simulator.add_event_hook`).  Because
the engine dispatches to *all* installed hooks, the hasher coexists with
other observers -- notably the :mod:`repro.obs` tracer -- on the same
run.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event

_PACK = struct.Struct("<dB").pack


class DeterminismError(AssertionError):
    """Two same-seed runs produced different event-stream digests."""


class EventStreamHasher:
    """Folds a simulator's processed-event stream into one digest.

    The fingerprint covers, per event and in processing order: the
    simulated timestamp, whether the event succeeded, and the event's
    type name.  That is exactly the engine's observable schedule -- two
    runs with equal digests processed the same kinds of events at the
    same times in the same order.  Payload values are deliberately
    excluded: they may hold unhashable or address-dependent objects, and
    any payload difference that matters must change downstream event
    timing anyway.
    """

    __slots__ = ("_digest", "_count")

    def __init__(self) -> None:
        self._digest = hashlib.blake2b(digest_size=16)
        self._count = 0

    def __call__(self, now: float, event: Event) -> None:
        self._digest.update(_PACK(now, 1 if event._ok else 0))
        self._digest.update(type(event).__name__.encode("ascii"))
        self._count += 1

    @property
    def events_hashed(self) -> int:
        """Number of events folded into the digest so far."""
        return self._count

    def hexdigest(self) -> str:
        """Digest of the stream observed so far (non-destructive)."""
        return self._digest.hexdigest()

    def attach(self, sim: Simulator) -> "EventStreamHasher":
        """Add this hasher to *sim*'s event hooks (returns self).

        Other observers (e.g. an :mod:`repro.obs` tracer) stay installed;
        the engine dispatches to every hook in installation order.
        """
        sim.add_event_hook(self)
        return self

    def detach(self, sim: Simulator) -> None:
        """Remove this hasher from *sim*'s event hooks (idempotent)."""
        sim.remove_event_hook(self)


def digest_run(
    build: Callable[[], Simulator],
    until: Optional[float] = None,
) -> tuple[str, int]:
    """Build a simulator, run it observed, and fingerprint the run.

    *build* must construct a fresh simulator with all model processes
    already started (seeding included).  Returns ``(hexdigest,
    events_hashed)``.
    """
    sim = build()
    hasher = EventStreamHasher().attach(sim)
    try:
        if until is None:
            sim.run()
        else:
            sim.run(until=until)
    finally:
        hasher.detach(sim)
    return hasher.hexdigest(), hasher.events_hashed


def assert_deterministic(
    build: Callable[[], Simulator],
    runs: int = 2,
    until: Optional[float] = None,
    label: str = "model",
) -> str:
    """Run *build* ``runs`` times and require identical digests.

    Returns the common digest; raises :class:`DeterminismError` naming
    the first diverging run otherwise.  Each invocation of *build* must
    recreate the model from scratch (fresh Simulator, fresh seeded
    streams) -- shared mutable state between runs defeats the point.
    """
    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare (got {runs})")
    reference: Optional[tuple[str, int]] = None
    for index in range(runs):
        outcome = digest_run(build, until=until)
        if reference is None:
            reference = outcome
        elif outcome != reference:
            raise DeterminismError(
                f"{label}: run {index + 1} diverged from run 1: "
                f"digest {outcome[0]} ({outcome[1]} events) != "
                f"{reference[0]} ({reference[1]} events)"
            )
    assert reference is not None
    return reference[0]


def _self_check() -> None:  # pragma: no cover - manual smoke hook
    """Tiny built-in smoke test (``python -m repro.devtools.sanitizer``)."""

    def build() -> Simulator:
        sim = Simulator()

        def worker(sim: Simulator) -> Any:
            for _ in range(10):
                yield sim.timeout(1.0)

        sim.process(worker(sim))
        return sim

    digest = assert_deterministic(build, runs=3)
    print(f"ok: 3 identical runs, digest {digest}")


if __name__ == "__main__":  # pragma: no cover
    _self_check()
