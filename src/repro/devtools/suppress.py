"""Suppression comments for simlint.

Two forms are honoured:

* line-scoped -- ``# simlint: ignore[DET001]`` (or a comma-separated
  list) on the flagged line silences the named rules there;
  ``# simlint: ignore`` with no bracket silences every rule on the line;
* file-scoped -- ``# simlint: ignore-file[SIM002]`` anywhere in the file
  silences the named rules for the whole file (a bare ``ignore-file``
  silences everything -- use sparingly).

Suppressions are deliberately explicit about the rule id so a reviewer
can see *which* invariant is being waived and grep for waivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import io
import re
import tokenize

_PRAGMA = re.compile(
    r"#\s*simlint:\s*(?P<scope>ignore-file|ignore)\s*(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel rule set meaning "every rule".
ALL_RULES = frozenset({"*"})


def _parse_rules(spec: str | None) -> frozenset[str]:
    if spec is None:
        return ALL_RULES
    rules = frozenset(part.strip().upper() for part in spec.split(",") if part.strip())
    return rules or ALL_RULES


@dataclass(frozen=True)
class Pragma:
    """One ``# simlint:`` comment, kept whole for staleness auditing.

    The by-line/file-wide maps answer "is this finding silenced?"; the
    pragma list answers the inverse question LNT001 asks -- "did this
    waiver silence *anything*?" -- which needs each comment's own
    location, scope, and rule list, plus where the pragma text sits in
    the line so ``--fix`` can strip it surgically.
    """

    line: int
    col: int
    #: ``"ignore"`` or ``"ignore-file"``.
    scope: str
    #: Rule ids named in the bracket ({"*"} for a bare pragma).
    rules: frozenset[str]
    #: Character offsets of the matched pragma text within the line.
    span: tuple[int, int]


@dataclass
class Suppressions:
    """Parsed suppression pragmas of one source file."""

    #: line number -> rule ids silenced on that line ({"*"} = all).
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    #: rule ids silenced file-wide ({"*"} = all).
    file_wide: frozenset[str] = frozenset()
    #: Every pragma comment found, in source order (for LNT001).
    pragmas: list[Pragma] = field(default_factory=list)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether *rule* is silenced at *line*."""
        rule = rule.upper()
        if "*" in self.file_wide or rule in self.file_wide:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return "*" in rules or rule in rules


def scan_suppressions(source: str) -> Suppressions:
    """Collect every ``# simlint:`` pragma in *source*.

    Tokenisation (rather than a per-line regex) keeps pragmas inside
    string literals from being honoured -- only real comments count.
    """
    suppressions = Suppressions()
    file_wide: set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if match is None:
                continue
            rules = _parse_rules(match.group("rules"))
            line = token.start[0]
            pragma_col = token.start[1] + match.start()
            suppressions.pragmas.append(
                Pragma(
                    line=line,
                    col=pragma_col,
                    scope=match.group("scope"),
                    rules=rules,
                    span=(pragma_col, token.start[1] + match.end()),
                )
            )
            if match.group("scope") == "ignore-file":
                file_wide.update(rules)
            else:
                existing = suppressions.by_line.get(line, frozenset())
                suppressions.by_line[line] = existing | rules
    except tokenize.TokenError:
        # Malformed tail (unterminated string, ...): keep what was
        # collected -- the AST parse will report the real syntax error.
        pass
    suppressions.file_wide = frozenset(file_wide)
    return suppressions


def suppression_comment(rule: str) -> str:
    """The canonical pragma text silencing *rule* on one line."""
    return f"# simlint: ignore[{rule.upper()}]"
