"""File/line-anchored lint findings.

A :class:`Diagnostic` is one finding of one rule at one source location.
Diagnostics sort by (path, line, column, rule) so output order is stable
across runs and machines -- the linter holds itself to the determinism
bar it enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: *rule* fired at *path*:*line*:*col* with *message*."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Whether the rule that produced this finding can rewrite the code
    #: (``eevfs lint --fix``).
    fixable: bool = False
    #: Precomputed replacement text for fixes that cannot be rederived
    #: from the AST alone (LNT001 carries the rewritten pragma line
    #: here; ``""`` means delete the line).  Excluded from ordering and
    #: equality so diagnostics still compare by location.
    fix_hint: str | None = field(default=None, compare=False)

    def format(self) -> str:
        """Human-readable one-liner (``path:line:col: RULE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the ``--format json`` record schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "fixable": self.fixable,
        }
