"""Running simlint over files and trees.

:func:`lint_paths` is the programmatic entry point (the ``eevfs lint``
subcommand is a thin argparse shim over it): walk the given files and
directories, check every ``*.py`` file, drop findings silenced by
``# simlint:`` pragmas, and return the surviving diagnostics sorted by
location.  :func:`apply_fixes` rewrites files in place for the subset of
findings whose rules provide a mechanical fix.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
import json
import os
from typing import Iterable, Iterator, Sequence

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.rules import (
    all_rules,
    check_file,
    Edit,
    LintConfig,
    LintContext,
    registered_rule_ids,
    Rule,
)
from repro.devtools.suppress import ALL_RULES, Pragma, scan_suppressions, Suppressions
from repro.devtools.symbols import build_project, ProjectModel

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".pytest_cache", "build", "dist"}
)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``*.py`` file under *paths* (files pass through as-is),
    in sorted order so runs are reproducible."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


@dataclass
class LintResult:
    """Outcome of one :func:`lint_paths` run."""

    #: Findings that survived suppression, sorted by location.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Files checked (after walking), in check order.
    files: list[str] = field(default_factory=list)
    #: Findings silenced by pragmas (visible for ``--show-suppressed``
    #: style tooling and for tests).
    suppressed: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def _pragma_matches(
    pragma: Pragma, diag: Diagnostic, rule: str | None = None
) -> bool:
    """Whether *pragma* is the kind of waiver that silences *diag*
    (restricted to *rule* when given)."""
    if pragma.scope == "ignore" and diag.line != pragma.line:
        return False
    if rule is not None:
        return diag.rule == rule
    return "*" in pragma.rules or diag.rule in pragma.rules


def _pragma_fix_hint(line_text: str, pragma: Pragma, kept: list[str]) -> str:
    """New text for the pragma's line: rewrite the bracket to the rules
    still earning their keep, or strip the pragma entirely.  ``""``
    means the whole line goes."""
    before, after = line_text[: pragma.span[0]], line_text[pragma.span[1] :]
    if kept:
        replacement = f"# simlint: {pragma.scope}[{','.join(kept)}]"
        return f"{before}{replacement}{after}".rstrip()
    stripped = f"{before.rstrip()}{after}".rstrip()
    return "" if not stripped.strip("# \t") else stripped


def unused_pragma_diagnostics(
    path: str,
    source: str,
    suppressions: Suppressions,
    suppressed: Sequence[Diagnostic],
    active_rule_ids: frozenset[str],
    full_rule_set: bool,
) -> list[Diagnostic]:
    """LNT001: pragmas (or bracket entries) that silenced nothing.

    A named rule is judged only when it ran (it is in
    *active_rule_ids*) -- a ``--select DET001`` run must not call a
    SIM002 waiver stale -- except that rule ids the registry has never
    heard of are always flagged.  Bare ``ignore``/``ignore[*]`` pragmas
    are judged only under the full rule set for the same reason.
    """
    posix = path.replace("\\", "/")
    known = registered_rule_ids()
    lines = source.splitlines()
    diags: list[Diagnostic] = []
    for pragma in suppressions.pragmas:
        named = sorted(pragma.rules - {"*"})
        unused: list[str] = []
        kept: list[str] = []
        if not named:
            if not full_rule_set:
                continue
            if any(_pragma_matches(pragma, d) for d in suppressed):
                continue
            message = f"unused `# simlint: {pragma.scope}` pragma: nothing fired here"
        else:
            for rule in named:
                if rule == "LNT001":
                    kept.append(rule)
                    continue
                judged = rule not in known or rule in active_rule_ids
                fired = any(_pragma_matches(pragma, d, rule=rule) for d in suppressed)
                if judged and not fired:
                    unused.append(rule)
                else:
                    kept.append(rule)
            if not unused:
                continue
            stale = ", ".join(unused)
            ghosts = [r for r in unused if r not in known]
            if ghosts:
                message = (
                    f"suppression names unknown rule id(s) {', '.join(ghosts)}; "
                    "remove the stale waiver"
                )
            else:
                message = f"unused suppression: {stale} never fired here"
        line_text = lines[pragma.line - 1] if pragma.line <= len(lines) else ""
        diags.append(
            Diagnostic(
                path=posix,
                line=pragma.line,
                col=pragma.col + 1,
                rule="LNT001",
                message=message,
                fixable=True,
                fix_hint=_pragma_fix_hint(line_text, pragma, kept),
            )
        )
    return diags


def lint_source(
    path: str,
    source: str,
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
    project: ProjectModel | None = None,
    tree: "ast.Module | None" = None,
    full_rule_set: bool | None = None,
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Check one in-memory source; returns (active, suppressed) findings."""
    findings = check_file(
        path, source, config=config, rules=rules, project=project, tree=tree
    )
    suppressions = scan_suppressions(source)
    active: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for diag in findings:
        if suppressions.is_suppressed(diag.line, diag.rule):
            suppressed.append(diag)
        else:
            active.append(diag)
    rule_ids = frozenset(r.id for r in rules) if rules is not None else registered_rule_ids()
    if full_rule_set is None:
        full_rule_set = rule_ids >= registered_rule_ids()
    if "LNT001" in rule_ids:
        for diag in unused_pragma_diagnostics(
            path, source, suppressions, suppressed, rule_ids, full_rule_set
        ):
            if suppressions.is_suppressed(diag.line, diag.rule):
                suppressed.append(diag)
            else:
                active.append(diag)
        active.sort()
        suppressed.sort()
    return active, suppressed


def lint_paths(
    paths: Sequence[str],
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint every Python file reachable from *paths*.

    Two phases: every file is read and parsed once and the cross-module
    symbol table (:mod:`repro.devtools.symbols`) is built over the whole
    set; then each file is checked against the shared model, so the
    interprocedural rules see callees defined in sibling modules.
    """
    rules = all_rules(select)
    config = config or LintConfig()
    result = LintResult()
    entries: list[tuple[str, str, "ast.Module | None"]] = []
    for filename in iter_python_files(paths):
        try:
            with open(filename, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            result.diagnostics.append(
                Diagnostic(
                    path=filename.replace("\\", "/"),
                    line=1,
                    col=1,
                    rule="E902",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        try:
            tree: "ast.Module | None" = ast.parse(source, filename=filename)
        except SyntaxError:
            tree = None  # check_file re-parses and reports E999.
        entries.append((filename, source, tree))
    project = build_project(
        [(name, tree) for name, _, tree in entries if tree is not None],
        schedule_primitives=config.schedule_primitives,
        callback_sinks=config.callback_sinks,
    )
    for filename, source, tree in entries:
        result.files.append(filename)
        active, suppressed = lint_source(
            filename,
            source,
            config=config,
            rules=rules,
            project=project,
            tree=tree,
            full_rule_set=select is None,
        )
        result.diagnostics.extend(active)
        result.suppressed.extend(suppressed)
    result.diagnostics.sort()
    result.suppressed.sort()
    return result


def apply_fixes(
    result: LintResult,
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
) -> int:
    """Rewrite files in place for every fixable finding in *result*.

    Edits are computed per file from a fresh parse and applied bottom-up
    so earlier line numbers stay valid.  Returns the number of edits
    applied; re-linting afterwards reports anything that remains.
    """
    rules = {rule.id: rule for rule in all_rules(select)}
    fixed = 0
    by_file: dict[str, list[Diagnostic]] = {}
    for diag in result.diagnostics:
        if diag.fixable:
            by_file.setdefault(diag.path, []).append(diag)
    for path, diags in by_file.items():
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        ctx = LintContext(
            path=path, source=source, tree=tree, config=config or LintConfig()
        )
        edits: list[Edit] = []
        for diag in diags:
            rule = rules.get(diag.rule)
            if rule is None:
                continue
            edit = rule.fix(ctx, diag)
            if edit is not None:
                edits.append(edit)
        if not edits:
            continue
        lines = source.splitlines(keepends=True)
        newline = "\n"
        for edit in sorted(edits, key=lambda e: e.line, reverse=True):
            index = edit.line - 1
            if not 0 <= index < len(lines):
                continue
            if edit.delete:
                del lines[index]
            elif edit.insert:
                lines.insert(index, edit.new_text + newline)
            else:
                ending = newline if lines[index].endswith(newline) else ""
                lines[index] = edit.new_text + ending
            fixed += 1
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("".join(lines))
    return fixed


def render_text(result: LintResult) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per
    finding plus a summary line."""
    lines = [diag.format() for diag in result.diagnostics]
    count = len(result.diagnostics)
    noun = "finding" if count == 1 else "findings"
    summary = f"{count} {noun} in {len(result.files)} files"
    if result.suppressed:
        summary += f" ({len(result.suppressed)} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "findings": [diag.as_dict() for diag in result.diagnostics],
        "suppressed": [diag.as_dict() for diag in result.suppressed],
        "files_checked": len(result.files),
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
