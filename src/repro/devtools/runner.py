"""Running simlint over files and trees.

:func:`lint_paths` is the programmatic entry point (the ``eevfs lint``
subcommand is a thin argparse shim over it): walk the given files and
directories, check every ``*.py`` file, drop findings silenced by
``# simlint:`` pragmas, and return the surviving diagnostics sorted by
location.  :func:`apply_fixes` rewrites files in place for the subset of
findings whose rules provide a mechanical fix.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
import json
import os
from typing import Iterable, Iterator, Sequence

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.rules import (
    all_rules,
    check_file,
    Edit,
    LintConfig,
    LintContext,
    Rule,
)
from repro.devtools.suppress import scan_suppressions

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".pytest_cache", "build", "dist"}
)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield every ``*.py`` file under *paths* (files pass through as-is),
    in sorted order so runs are reproducible."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


@dataclass
class LintResult:
    """Outcome of one :func:`lint_paths` run."""

    #: Findings that survived suppression, sorted by location.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Files checked (after walking), in check order.
    files: list[str] = field(default_factory=list)
    #: Findings silenced by pragmas (visible for ``--show-suppressed``
    #: style tooling and for tests).
    suppressed: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def lint_source(
    path: str,
    source: str,
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Check one in-memory source; returns (active, suppressed) findings."""
    findings = check_file(path, source, config=config, rules=rules)
    suppressions = scan_suppressions(source)
    active: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for diag in findings:
        if suppressions.is_suppressed(diag.line, diag.rule):
            suppressed.append(diag)
        else:
            active.append(diag)
    return active, suppressed


def lint_paths(
    paths: Sequence[str],
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint every Python file reachable from *paths*."""
    rules = all_rules(select)
    result = LintResult()
    for filename in iter_python_files(paths):
        try:
            with open(filename, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            result.diagnostics.append(
                Diagnostic(
                    path=filename.replace("\\", "/"),
                    line=1,
                    col=1,
                    rule="E902",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        result.files.append(filename)
        active, suppressed = lint_source(filename, source, config=config, rules=rules)
        result.diagnostics.extend(active)
        result.suppressed.extend(suppressed)
    result.diagnostics.sort()
    result.suppressed.sort()
    return result


def apply_fixes(
    result: LintResult,
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
) -> int:
    """Rewrite files in place for every fixable finding in *result*.

    Edits are computed per file from a fresh parse and applied bottom-up
    so earlier line numbers stay valid.  Returns the number of edits
    applied; re-linting afterwards reports anything that remains.
    """
    rules = {rule.id: rule for rule in all_rules(select)}
    fixed = 0
    by_file: dict[str, list[Diagnostic]] = {}
    for diag in result.diagnostics:
        if diag.fixable:
            by_file.setdefault(diag.path, []).append(diag)
    for path, diags in by_file.items():
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        ctx = LintContext(
            path=path, source=source, tree=tree, config=config or LintConfig()
        )
        edits: list[Edit] = []
        for diag in diags:
            rule = rules.get(diag.rule)
            if rule is None:
                continue
            edit = rule.fix(ctx, diag)
            if edit is not None:
                edits.append(edit)
        if not edits:
            continue
        lines = source.splitlines(keepends=True)
        newline = "\n"
        for edit in sorted(edits, key=lambda e: e.line, reverse=True):
            index = edit.line - 1
            if not 0 <= index < len(lines):
                continue
            if edit.insert:
                lines.insert(index, edit.new_text + newline)
            else:
                ending = newline if lines[index].endswith(newline) else ""
                lines[index] = edit.new_text + ending
            fixed += 1
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("".join(lines))
    return fixed


def render_text(result: LintResult) -> str:
    """Human-readable report: one ``path:line:col: RULE message`` per
    finding plus a summary line."""
    lines = [diag.format() for diag in result.diagnostics]
    count = len(result.diagnostics)
    noun = "finding" if count == 1 else "findings"
    summary = f"{count} {noun} in {len(result.files)} files"
    if result.suppressed:
        summary += f" ({len(result.suppressed)} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "findings": [diag.as_dict() for diag in result.diagnostics],
        "suppressed": [diag.as_dict() for diag in result.suppressed],
        "files_checked": len(result.files),
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
