"""Developer tooling: the ``simlint`` static-analysis suite and the
runtime determinism sanitizer.

The reproduction's headline claims (EEVFS energy savings, PF-vs-NPF
parity, serial-vs-parallel byte-identical metrics) rest on invariants
nothing in the language enforces: every stochastic draw must flow
through named :class:`~repro.sim.rng.RandomStreams`, simulation code
must never read the wall clock, and everything crossing the
``repro.parallel`` process-pool boundary must be picklable.  This
package turns those conventions into tooling:

* :mod:`repro.devtools.diagnostics` -- file/line-anchored findings,
* :mod:`repro.devtools.suppress`    -- ``# simlint: ignore[rule]`` comments,
* :mod:`repro.devtools.rules`       -- the rule engine and registry,
* :mod:`repro.devtools.checks`      -- the DET/PAR/SIM rule implementations,
* :mod:`repro.devtools.runner`      -- file walking, rendering, fixing,
* :mod:`repro.devtools.cfg`         -- per-function control-flow graphs,
* :mod:`repro.devtools.symbols`     -- the cross-module scheduling symbol table,
* :mod:`repro.devtools.checks_sched` -- the CONT/SIM003/DET004/LNT001 rules,
* :mod:`repro.devtools.sanitizer`   -- runtime event-stream digests and the
  schedule-perturbation sanitizer,
* :mod:`repro.devtools.racesuite`   -- the whole-model chaos-scheduler suite
  (imported lazily: it pulls in the full EEVFS stack).

Run it as ``eevfs lint [paths...]`` (static checks) or ``eevfs lint
--races`` (chaos-scheduler suite); see :mod:`repro.cli`.
"""

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.rules import all_rules, LintConfig, Rule
from repro.devtools.runner import lint_paths, render_json, render_text
from repro.devtools.sanitizer import (
    assert_deterministic,
    assert_schedule_invariant,
    DeterminismError,
    digest_run,
    EventStreamHasher,
    perturbed_digest_run,
    ScheduleProbe,
    ScheduleRaceError,
    TimeBucketHasher,
)

__all__ = [
    "DeterminismError",
    "Diagnostic",
    "EventStreamHasher",
    "LintConfig",
    "Rule",
    "ScheduleProbe",
    "ScheduleRaceError",
    "TimeBucketHasher",
    "all_rules",
    "assert_deterministic",
    "assert_schedule_invariant",
    "digest_run",
    "lint_paths",
    "perturbed_digest_run",
    "render_json",
    "render_text",
]
