"""Developer tooling: the ``simlint`` static-analysis suite and the
runtime determinism sanitizer.

The reproduction's headline claims (EEVFS energy savings, PF-vs-NPF
parity, serial-vs-parallel byte-identical metrics) rest on invariants
nothing in the language enforces: every stochastic draw must flow
through named :class:`~repro.sim.rng.RandomStreams`, simulation code
must never read the wall clock, and everything crossing the
``repro.parallel`` process-pool boundary must be picklable.  This
package turns those conventions into tooling:

* :mod:`repro.devtools.diagnostics` -- file/line-anchored findings,
* :mod:`repro.devtools.suppress`    -- ``# simlint: ignore[rule]`` comments,
* :mod:`repro.devtools.rules`       -- the rule engine and registry,
* :mod:`repro.devtools.checks`      -- the DET/PAR/SIM rule implementations,
* :mod:`repro.devtools.runner`      -- file walking, rendering, fixing,
* :mod:`repro.devtools.sanitizer`   -- runtime event-stream digests.

Run it as ``eevfs lint [paths...]`` (see :mod:`repro.cli`).
"""

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.rules import all_rules, LintConfig, Rule
from repro.devtools.runner import lint_paths, render_json, render_text
from repro.devtools.sanitizer import (
    assert_deterministic,
    DeterminismError,
    digest_run,
    EventStreamHasher,
)

__all__ = [
    "DeterminismError",
    "Diagnostic",
    "EventStreamHasher",
    "LintConfig",
    "Rule",
    "all_rules",
    "assert_deterministic",
    "digest_run",
    "lint_paths",
    "render_json",
    "render_text",
]
