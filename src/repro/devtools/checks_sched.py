"""Continuation-safety and scheduling-order rules (simlint v2).

PR 8 moved the hot path onto pooled ``call_soon``/``call_later``
continuations, which created hazard classes the per-node v1 rules
cannot see: a closure scheduled *now* but run *later* observes the
loop variable's final value, a pooled carrier referenced after its
free-list ``append`` is someone else's event by the time it is read,
and two callbacks at the same ``(time, priority)`` run in whatever
order a ``set`` hashed them.  These rules use the v2 machinery -- the
per-function CFG (:mod:`repro.devtools.cfg`) and the cross-module
symbol table (:mod:`repro.devtools.symbols`) -- to reason about
*when* code runs, not just what it says:

========  ==============================================================
CONT001   loop variable late-bound into a scheduled callback
CONT002   pooled carrier retained past its recycle point
SIM003    same-(time, priority) scheduling driven by set/dict order
DET004    RNG stream derived from an unordered collection
LNT001    suppression pragma that silences nothing (engine-computed)
========  ==============================================================

As everywhere in simlint the analysis is approximate and says so:
closures are only traced when passed directly (or by local ``def``
name) into a callback sink, and callee behaviour is resolved by bare
name across the project model -- conservative in the direction of
flagging, with ``# simlint: ignore[rule]`` (now itself audited by
LNT001) as the reviewed escape hatch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.devtools.cfg import build_cfg
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.rules import Edit, LintContext, register, Rule
from repro.devtools.symbols import callee_bare_name

# -- shared AST plumbing -------------------------------------------------------


def _parents(root: ast.AST) -> dict[int, ast.AST]:
    """Child-id -> parent map (ast has no parent links)."""
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _target_names(target: ast.expr) -> set[str]:
    """Names bound by a loop/assignment target (handles tuple nesting)."""
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _own_statements(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk *body* without descending into nested def/class scopes."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _closure_params(fn: "ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
    args = fn.args
    return {
        a.arg
        for a in args.posonlyargs + args.args + args.kwonlyargs
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    }


def _captured(
    fn: "ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef", names: set[str]
) -> list[str]:
    """Which of *names* the closure reads free (not shadowed by a
    parameter -- ``lambda d=disk:`` binds at definition time and is the
    sanctioned idiom)."""
    shadowed = _closure_params(fn)
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    found: set[str] = set()
    for node in _own_statements(body):  # type: ignore[arg-type]
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in names and node.id not in shadowed:
                found.add(node.id)
    return sorted(found)


# -- CONT001: late-bound loop variable in a scheduled callback -----------------


@register
class Cont001LateBoundLoopVar(Rule):
    """CONT001: a callback scheduled from inside a loop closes over the
    loop variable.

    Python closures capture *variables*, not values: every
    ``call_soon(lambda: use(disk))`` scheduled in a ``for disk in ...``
    loop runs after the loop finished and sees the **last** ``disk``.
    The engine dispatches such callbacks at the same timestamp later in
    the run, so the bug produces quietly wrong attribution (all
    telemetry reads the final disk), not a crash.

    A callback sink is a direct schedule primitive
    (:attr:`LintConfig.callback_sinks`: ``call_soon`` takes the callable
    first, ``call_later`` second), an append onto a ``callbacks``
    container, or -- via the cross-module symbol table -- any project
    function that forwards or retains the parameter at that position
    (``telemetry.gauge(name, fn)`` stores ``fn`` forever).  Closures are
    traced when passed directly as the sink argument or by the name of a
    ``def`` in the same loop body.  Default-binding
    (``lambda d=disk: ...``) captures the value at definition time and
    is the supported idiom.
    """

    id = "CONT001"
    summary = "loop variable late-bound into a scheduled callback"
    rationale = (
        "A continuation scheduled in a loop outlives the iteration that "
        "created it; reading the loop variable at call time aliases "
        "every callback onto the final element."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        sink_pos = dict(ctx.config.callback_sinks)
        project = ctx.project

        def sink_positions(call: ast.Call) -> set[int]:
            bare = callee_bare_name(call)
            if bare is None:
                return set()
            positions: set[int] = set()
            if bare in sink_pos:
                positions.add(sink_pos[bare])
            elif bare == "append" and isinstance(call.func, ast.Attribute):
                owner = call.func.value
                if isinstance(owner, ast.Attribute) and owner.attr == "callbacks":
                    positions.add(0)
            elif project is not None:
                positions |= set(project.callback_param_positions(bare))
            return positions

        def scan_loop(loop: "ast.For | ast.AsyncFor", targets: set[str]) -> Iterator[Diagnostic]:
            local_defs: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
            for node in _own_statements(loop.body):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local_defs[node.name] = node
            for node in _own_statements(loop.body):
                if not isinstance(node, ast.Call):
                    continue
                for pos in sink_positions(node):
                    if pos >= len(node.args):
                        continue
                    arg = node.args[pos]
                    closure: "ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef | None"
                    closure = None
                    if isinstance(arg, ast.Lambda):
                        closure = arg
                    elif isinstance(arg, ast.Name) and arg.id in local_defs:
                        closure = local_defs[arg.id]
                    if closure is None:
                        continue
                    for name in _captured(closure, targets):
                        yield self.diagnostic(
                            ctx,
                            closure,
                            f"scheduled callback captures loop variable "
                            f"`{name}` by reference; it is late-bound to the "
                            f"final iteration value -- bind it as a default "
                            f"(`lambda {name}={name}: ...`)",
                        )

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                targets = _target_names(node.target)
                if targets:
                    yield from scan_loop(node, targets)


# -- CONT002: pooled carrier retained past recycle -----------------------------


@register
class Cont002RetainedAfterRecycle(Rule):
    """CONT002: a pooled object is used after being returned to its
    free list.

    ``Continuation`` carriers are recycled by appending to a pool
    (``self._cont_free.append(cont)``) *before* the callback runs, so
    the next ``call_soon`` may hand the same object to someone else.
    Any reference retained past the recycle point -- passed to a call,
    stored, returned, or put in a container -- aliases a carrier whose
    slots will be overwritten.

    The rule finds recycle statements (an ``append`` whose receiver's
    dotted chain mentions a pool marker from
    :attr:`LintConfig.pool_markers`, or a local name bound to such a
    bound method) and walks the function's CFG forward from each.  The
    scan is kill-aware: rebinding the name (``event = ...`` at the top
    of the dispatch loop, a ``for`` target) ends the hazard on that
    path, which is exactly why the engine's own run loop is clean.
    Plain attribute reads (``event._fn``) do not extend the object's
    lifetime and are allowed.
    """

    id = "CONT002"
    summary = "pooled object retained past its recycle point"
    rationale = (
        "A recycled carrier is the pool's to reuse; any retained "
        "reference is a use-after-free that reads the *next* "
        "continuation's fn/value and corrupts dispatch silently."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        markers = ctx.config.pool_markers
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node, markers)

    def _check_function(
        self,
        ctx: LintContext,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        markers: tuple[str, ...],
    ) -> Iterator[Diagnostic]:
        def is_pool_chain(expr: ast.expr) -> bool:
            # `self._cont_free.append` -> receiver chain mentions a marker.
            if not (isinstance(expr, ast.Attribute) and expr.attr == "append"):
                return False
            parts: list[str] = []
            value = expr.value
            while isinstance(value, ast.Attribute):
                parts.append(value.attr)
                value = value.value
            if isinstance(value, ast.Name):
                parts.append(value.id)
            return any(m in part.lower() for part in parts for m in markers)

        # Local names bound to a pool's append (`recycle = self._cont_free.append`).
        recycler_names: set[str] = set()
        for node in _own_statements(fn.body):
            if isinstance(node, ast.Assign) and is_pool_chain(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        recycler_names.add(target.id)

        # Recycle statements: Expr(Call) through either form, arg a Name.
        recycles: list[tuple[ast.stmt, str]] = []
        for stmt in _own_statements(fn.body):
            if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
                continue
            call = stmt.value
            direct = is_pool_chain(call.func)
            via_name = (
                isinstance(call.func, ast.Name) and call.func.id in recycler_names
            )
            if not (direct or via_name):
                continue
            if len(call.args) == 1 and isinstance(call.args[0], ast.Name):
                recycles.append((stmt, call.args[0].id))

        if not recycles:
            return

        cfg = build_cfg(fn)

        def rebinds(stmt: ast.stmt, name: str) -> bool:
            if isinstance(stmt, ast.Assign):
                return any(name in _target_names(t) for t in stmt.targets)
            if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                return name in _target_names(stmt.target)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                return name in _target_names(stmt.target)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                return any(
                    item.optional_vars is not None
                    and name in _target_names(item.optional_vars)
                    for item in stmt.items
                )
            if isinstance(stmt, ast.Delete):
                return any(name in _target_names(t) for t in stmt.targets)
            return False

        for recycle_stmt, name in recycles:
            if cfg.locate(recycle_stmt) is None:
                continue
            reported: set[int] = set()
            for later in cfg.walk_after(recycle_stmt, kill=lambda s: rebinds(s, name)):
                for use in self._retentions(later, name):
                    if use.lineno not in reported:
                        reported.add(use.lineno)
                        yield self.diagnostic(
                            ctx,
                            use,
                            f"`{name}` was recycled into its pool at line "
                            f"{recycle_stmt.lineno} and is still referenced "
                            "here; copy what you need into locals before the "
                            "append",
                        )

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.AST]:
        """What *stmt* evaluates at its own CFG position.  Compound
        statements are yielded by ``walk_after`` as headers -- their
        suites arrive as separate statements -- so only the header
        expressions belong to this visit."""
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, ast.Try):
            return []
        if isinstance(stmt, ast.Match):
            return [stmt.subject]
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return []
        return [stmt]

    @classmethod
    def _retentions(cls, stmt: ast.stmt, name: str) -> Iterator[ast.AST]:
        """Uses of *name* evaluated at *stmt* that extend the object's
        lifetime: call argument, assignment value, container element,
        return/yield.  Attribute reads (`name.attr`) are not retention."""
        roots = cls._header_exprs(stmt)
        for root in roots:
            yield from cls._retentions_in(root, name)

    @staticmethod
    def _retentions_in(root: ast.AST, name: str) -> Iterator[ast.AST]:
        parents = _parents(root)
        for node in ast.walk(root):
            if not (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, ast.Load)
            ):
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue
            if isinstance(parent, ast.Call) and node in parent.args:
                yield node
            elif isinstance(parent, ast.keyword):
                yield node
            elif isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                yield node
            elif isinstance(parent, (ast.List, ast.Tuple, ast.Set)):
                yield node
            elif isinstance(parent, ast.Dict):
                yield node
            elif isinstance(parent, (ast.Assign, ast.AnnAssign)) and parent.value is node:
                yield node


# -- SIM003: scheduling order from unordered iteration -------------------------


@register
class Sim003UnorderedScheduling(Rule):
    """SIM003: events scheduled from a loop over an unordered
    collection.

    The engine breaks same-``(time, priority)`` ties by insertion
    sequence, so *submission order is execution order* within a lane.
    A ``for node in self.waiting: node.succeed()`` over a ``set`` makes
    that sequence follow hash order -- two runs with different
    ``PYTHONHASHSEED`` execute the same events in different order, and
    the schedule-perturbation sanitizer will flag the divergence at
    runtime.  This rule catches it statically.

    Fires on ``for`` loops whose iterable is a set literal,
    ``set(...)``/``frozenset(...)``, or a bare ``.keys()``/``.values()``
    (the DET003 detector) and whose body calls a schedule primitive
    (:attr:`LintConfig.schedule_primitives`) -- directly, or one
    interprocedural hop away through any project function that itself
    schedules (resolved by bare name in the symbol table).  Unlike
    DET003 it applies *everywhere*: scheduling from hash order is wrong
    in any package.
    """

    id = "SIM003"
    summary = "same-(time, priority) scheduling driven by unordered iteration"
    rationale = (
        "Zero-delay lanes are FIFO in submission order; feeding them "
        "from a set couples the event schedule to PYTHONHASHSEED, the "
        "exact nondeterminism the perturbation sanitizer exists to "
        "catch."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.devtools.checks import Det003UnorderedIteration

        primitives = set(ctx.config.schedule_primitives)
        project = ctx.project

        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            what = Det003UnorderedIteration._unordered(node.iter)
            if what is None:
                continue
            for call in _own_statements(node.body):
                if not isinstance(call, ast.Call):
                    continue
                bare = callee_bare_name(call)
                if bare is None:
                    continue
                if bare in primitives:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"loop over {what} schedules events (`{bare}` at "
                        f"line {call.lineno}): same-timestamp order follows "
                        "hash order; iterate sorted(...) or an ordered "
                        "structure",
                    )
                    break
                if project is not None and project.schedules(bare, depth=0):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"loop over {what} calls `{bare}` (line "
                        f"{call.lineno}), which schedules events: "
                        "same-timestamp order follows hash order; iterate "
                        "sorted(...) or an ordered structure",
                    )
                    break


# -- DET004: RNG stream derived from unordered collection ----------------------


@register
class Det004UnorderedStreamDerivation(Rule):
    """DET004: a named RNG stream derived from an unordered source.

    ``RandomStreams`` names are hashed into seed entropy, so the *name*
    must be stable across runs.  Building one from a ``set``, a dict
    view, or an ``id()`` (CPython addresses change every process) makes
    the stream -- and every draw after it -- run-dependent:
    ``streams.stream(f"repair:{set_of_nodes}")`` or
    ``spawn(tuple(d.keys()))`` reseed differently per run.

    Fires on calls to the stream factories in
    :attr:`LintConfig.stream_factories` whose argument subtree contains
    a set literal, ``set(...)``/``frozenset(...)``, ``.keys()`` /
    ``.values()``, or ``id(...)`` without an order-normalising wrapper
    (``sorted``/``len``/``sum``/``min``/``max``) between the factory
    and the offender.
    """

    id = "DET004"
    summary = "RNG stream derived from an unordered collection"
    rationale = (
        "Stream names feed SHA-256 seed derivation; an unstable name "
        "desynchronises that stream and every downstream draw between "
        "same-seed runs."
    )

    _NORMALISERS = frozenset({"sorted", "len", "sum", "min", "max"})

    def _offence(self, expr: ast.expr) -> tuple[ast.AST, str] | None:
        """First unordered source in *expr* not behind a normaliser."""
        if isinstance(expr, ast.Call):
            bare = callee_bare_name(expr)
            if bare in self._NORMALISERS:
                return None
            if bare in ("set", "frozenset") and isinstance(expr.func, ast.Name):
                return expr, f"{bare}(...)"
            if bare == "id" and isinstance(expr.func, ast.Name):
                return expr, "id(...) (per-process address)"
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("keys", "values")
                and not expr.args
            ):
                return expr, f".{expr.func.attr}() of a dict"
        if isinstance(expr, ast.Set):
            return expr, "a set literal"
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, (ast.expr, ast.keyword, ast.FormattedValue)):
                inner = child.value if isinstance(child, ast.keyword) else child
                if isinstance(inner, ast.expr):
                    found = self._offence(inner)
                    if found is not None:
                        return found
        return None

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        factories = set(ctx.config.stream_factories)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            bare = callee_bare_name(node)
            if bare not in factories:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                found = self._offence(arg)
                if found is not None:
                    _, what = found
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"stream derivation `{bare}(...)` built from {what}: "
                        "the seed entropy varies across runs; normalise with "
                        "sorted(...) first",
                    )
                    break


# -- LNT001: stale suppression pragmas -----------------------------------------


@register
class Lnt001UnusedSuppression(Rule):
    """LNT001: a ``# simlint: ignore[...]`` pragma that silences
    nothing.

    Stale waivers are worse than no waivers: they document a hazard
    that no longer exists and pre-silence the rule if the hazard ever
    comes back.  The runner cross-references every pragma against the
    findings it actually suppressed in the same run and flags entries
    that caught nothing; ``--fix`` rewrites the bracket down to the
    rules still earning their keep (or strips the pragma -- and a
    pragma-only line -- entirely).

    Named rules are only judged when they ran (a ``--select DET001``
    run says nothing about a SIM002 waiver); bare ``ignore`` pragmas
    only under the full rule set; rule ids the registry has never heard
    of are always flagged.  This rule is computed by the runner from
    suppression bookkeeping -- per-file ``check`` yields nothing.
    """

    id = "LNT001"
    summary = "suppression pragma that silences nothing"
    rationale = (
        "Every waiver is a standing claim that a finding was reviewed "
        "and accepted; once the finding is gone the claim is false and "
        "hides the rule's next real catch."
    )

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        return iter(())

    def fix(self, ctx: LintContext, diagnostic: Diagnostic) -> Edit | None:
        if diagnostic.fix_hint is None:
            return None
        if diagnostic.fix_hint == "":
            return Edit(line=diagnostic.line, new_text="", delete=True)
        return Edit(line=diagnostic.line, new_text=diagnostic.fix_hint)
