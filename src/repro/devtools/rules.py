"""The simlint rule engine.

A :class:`Rule` inspects one parsed source file (a :class:`LintContext`)
and yields :class:`~repro.devtools.diagnostics.Diagnostic` findings.
Rules register themselves in a module-level registry via
:func:`register`; :func:`all_rules` instantiates the full set (importing
:mod:`repro.devtools.checks` on first use so the registry is populated).

Path scoping
------------
Most rules only apply to parts of the tree (wall-clock reads are fine in
the perf harness, raw RNG construction is fine inside ``sim/rng.py``).
Scoping works on *posix path suffixes*: a scope of ``"repro/sim"``
matches any file whose path contains that package directory, and
``"repro/sim/rng.py"`` matches exactly that module wherever the tree is
checked out.  Test fixtures exercise scoped rules by mimicking the
package layout under their fixture directory.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

from repro.devtools.diagnostics import Diagnostic
from repro.devtools.symbols import (
    ModuleInfo,
    module_name_for_path,
    ProjectModel,
    summarise_module,
)


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def path_in_scope(path: str, scopes: Sequence[str]) -> bool:
    """Whether *path* falls under any of the *scopes* (suffix match)."""
    posix = _posix(path)
    for scope in scopes:
        if scope.endswith(".py"):
            if posix.endswith(scope):
                return True
        elif f"/{scope.rstrip('/')}/" in f"/{posix}":
            return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Where each scoped rule looks; override in tests or odd layouts."""

    #: The one module allowed to construct raw generators (DET001).
    rng_module: str = "repro/sim/rng.py"
    #: Paths allowed to read the wall clock (DET002).
    wallclock_allowed: tuple[str, ...] = (
        "repro/experiments/perf.py",
        "benchmarks",
        "repro/cli.py",
    )
    #: Packages whose iteration order feeds event scheduling or metric
    #: accumulation (DET003).
    ordered_packages: tuple[str, ...] = (
        "repro/sim",
        "repro/core",
        "repro/disk",
        "repro/faults",
        "repro/replication",
        "repro/net",
        "repro/obs",
        "repro/metaplane",
        "repro/online",
        "repro/backend",
    )
    #: Modules whose objects cross the process-pool pickle boundary
    #: (PAR001): the specs themselves plus everything their fields hold.
    picklable_modules: tuple[str, ...] = (
        "repro/parallel",
        "repro/core/config.py",
        "repro/traces/model.py",
        "repro/traces/synthetic.py",
        "repro/traces/berkeley.py",
        "repro/traces/nonstationary.py",
        "repro/traces/diurnal.py",
    )
    #: Packages where a swallowed exception can hide event-loop
    #: corruption (SIM001).
    event_loop_packages: tuple[str, ...] = (
        "repro/sim",
        "repro/disk",
        "repro/faults",
        "repro/backend",
    )
    #: Modules whose classes must declare ``__slots__`` (SIM002).
    slotted_modules: tuple[str, ...] = (
        "repro/sim/monitor.py",
        "repro/sim/resources.py",
        "repro/obs/tracer.py",
        "repro/obs/telemetry.py",
        "repro/backend/ftl.py",
    )
    #: Calls that enqueue work on the event loop.  Feeds the symbol
    #: table's ``schedules_directly`` summary (SIM003) and the closure
    #: rules' notion of "this callable will run later" (CONT001).
    schedule_primitives: tuple[str, ...] = (
        "call_soon",
        "call_later",
        "send_nowait",
        "succeed",
        "fail",
        "schedule",
    )
    #: Callback sinks and the positional index of their callable
    #: argument: ``call_soon(fn, ...)`` takes it first,
    #: ``call_later(delay, fn, ...)`` second.
    callback_sinks: tuple[tuple[str, int], ...] = (
        ("call_soon", 0),
        ("call_later", 1),
        ("add_event_hook", 0),
    )
    #: Substrings identifying a free-list / pool container in a dotted
    #: attribute chain (CONT002): ``self._cont_free.append(cont)``
    #: recycles ``cont``.
    pool_markers: tuple[str, ...] = ("free", "pool")
    #: Calls that derive a named RNG stream from their arguments
    #: (DET004): the argument must not be built from an unordered
    #: collection or an ``id()``.
    stream_factories: tuple[str, ...] = (
        "stream",
        "fault_stream",
        "spawn",
        "RandomStreams",
        "default_rng",
        "SeedSequence",
    )


@dataclass
class LintContext:
    """One file, parsed once, shared by every rule.

    ``project`` and ``module`` carry the phase-one symbol table
    (:mod:`repro.devtools.symbols`).  :func:`check_file` guarantees both
    are populated -- directory runs share one cross-module model,
    single-file entry points get a one-module model -- so rules use them
    unconditionally.
    """

    path: str
    source: str
    tree: ast.Module
    config: LintConfig = field(default_factory=LintConfig)
    project: ProjectModel | None = None
    module: ModuleInfo | None = None

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()


@dataclass(frozen=True)
class Edit:
    """A single-line replacement produced by a rule fixer.

    ``line`` is 1-based; ``new_text`` replaces the whole line (or, when
    ``insert=True``, is inserted *before* it; when ``delete=True``, the
    line is removed and ``new_text`` is ignored).  Fixers only make
    edits whose correctness is mechanical; anything judgement-shaped
    stays a diagnostic.
    """

    line: int
    new_text: str
    insert: bool = False
    delete: bool = False


class Rule:
    """Base class: subclasses set ``id``/``summary`` and implement ``check``."""

    id: str = ""
    summary: str = ""
    #: Why the invariant matters (surfaced by ``eevfs lint --list-rules``).
    rationale: str = ""

    def applies_to(self, ctx: LintContext) -> bool:
        """Path-based scoping; default: every file."""
        return True

    def check(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def fix(self, ctx: LintContext, diagnostic: Diagnostic) -> Edit | None:
        """Mechanical rewrite for *diagnostic*, if the rule supports one."""
        return None

    def diagnostic(
        self, ctx: LintContext, node: ast.AST, message: str, fixable: bool = False
    ) -> Diagnostic:
        return Diagnostic(
            path=_posix(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            fixable=fixable,
        )


#: Registered rule classes, in registration (= documentation) order.
_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding *cls* to the rule registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate every registered rule (optionally a subset by id)."""
    # Importing the checks modules populates the registry on first use.
    import repro.devtools.checks  # noqa: F401  (import-for-side-effect)
    import repro.devtools.checks_sched  # noqa: F401  (import-for-side-effect)

    wanted = None if select is None else {s.strip().upper() for s in select}
    rules = [cls() for rule_id, cls in _REGISTRY.items() if wanted is None or rule_id in wanted]
    if wanted is not None:
        unknown = wanted - set(_REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return rules


def single_file_project(
    path: str, tree: ast.Module, config: LintConfig
) -> tuple[ProjectModel, ModuleInfo]:
    """A one-module symbol table for single-file entry points."""
    module = summarise_module(
        path,
        tree,
        schedule_primitives=config.schedule_primitives,
        callback_sinks=config.callback_sinks,
    )
    project = ProjectModel()
    project.add_module(module)
    return project, module


def registered_rule_ids() -> frozenset[str]:
    """Every rule id the registry knows (for pragma validation)."""
    import repro.devtools.checks  # noqa: F401  (import-for-side-effect)
    import repro.devtools.checks_sched  # noqa: F401  (import-for-side-effect)

    return frozenset(_REGISTRY)


def check_file(
    path: str,
    source: str,
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
    project: ProjectModel | None = None,
    tree: ast.Module | None = None,
) -> list[Diagnostic]:
    """Run *rules* (default: all) over one file's source.

    Phase two of the two-phase engine: *project* is the cross-module
    symbol table built by phase one (``lint_paths``); when absent a
    one-module model is built so rules always see ``ctx.project``.
    Returns diagnostics sorted by location; suppression filtering
    happens in the runner so callers can also inspect raw findings.
    """
    config = config or LintConfig()
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Diagnostic(
                    path=_posix(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                    rule="E999",
                    message=f"syntax error: {exc.msg}",
                )
            ]
    if project is None:
        project, module = single_file_project(path, tree, config)
    else:
        module = project.modules.get(
            module_name_for_path(path)
        ) or single_file_project(path, tree, config)[1]
    ctx = LintContext(
        path=path,
        source=source,
        tree=tree,
        config=config,
        project=project,
        module=module,
    )
    findings: list[Diagnostic] = []
    for rule in rules if rules is not None else all_rules():
        if rule.applies_to(ctx):
            findings.extend(rule.check(ctx))
    return sorted(findings)


def with_config(config: LintConfig, **overrides: object) -> LintConfig:
    """A copy of *config* with selected fields replaced (test helper)."""
    return replace(config, **overrides)


#: Signature of the per-file source loader (swappable in tests).
SourceLoader = Callable[[str], str]
