"""The metadata-plane facade: shard groups, routing, and availability stats.

:class:`MetaPlane` builds ``metadata_shards`` replica groups of
``metadata_replicas`` :class:`~repro.metaplane.server.MetadataServer`
each, seeds them from the setup-time
:class:`~repro.core.metadata.ServerMetadata` snapshot, and accounts
availability: elections per shard, leaderless time inside the
measurement window, routed/rejected/unroutable requests, committed
placement updates.

Three deliberate simplifications, documented in docs/metadata-plane.md:

* **Leaderless accounting is omniscient** -- the plane (harness-level
  machinery, like the fault injector) watches role transitions directly;
  nothing in the simulated protocol reads these numbers.
* **Node liveness is an oracle** -- ``mark_node_down``/``up`` apply to
  every replica's state directly, the same zero-detection-latency
  membership stand-in the monolithic server uses.
* **Proposal submission is collapsed** -- the repair manager hands a
  placement update to the current leader by direct call (queued while
  the shard is leaderless, drained on the next election win).
  *Replication* of the update -- the part that must survive crashes --
  runs through the real message-passing log protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.config import EEVFSConfig
from repro.core.metadata import ServerMetadata
from repro.metaplane.ring import ShardRing
from repro.metaplane.server import MetadataServer
from repro.net.fabric import Fabric
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def shard_server_name(shard: int, replica: int) -> str:
    """Endpoint name of replica *replica* of shard *shard*."""
    return f"meta-s{shard}-r{replica}"


@dataclass
class ShardStats:
    """Availability metrics for one shard (plain data, picklable)."""

    shard: int
    elections: int = 0
    #: Simulated seconds inside the measurement window with no leader.
    leaderless_s: float = 0.0
    #: Highest term reached by any replica (restlessness diagnostic).
    term: int = 0
    requests_routed: int = 0
    not_leader_rejections: int = 0
    proposals_committed: int = 0


@dataclass
class MetaPlaneStats:
    """Plane-wide availability metrics riding on ``RunResult.metaplane``."""

    n_shards: int
    n_replicas: int
    elections: int = 0
    leaderless_s: float = 0.0
    requests_routed: int = 0
    not_leader_rejections: int = 0
    requests_unroutable: int = 0
    proposals_committed: int = 0
    writes_fanned_out: int = 0
    shards: List[ShardStats] = field(default_factory=list)

    @property
    def max_leaderless_s(self) -> float:
        """Worst single shard's leaderless time."""
        return max((s.leaderless_s for s in self.shards), default=0.0)


class ShardRouter:
    """The client's (non-omniscient) view of where each shard's leader is.

    The router guesses a replica per shard (initially replica 0), jumps
    straight to the leader named by a ``not leader`` rejection hint, and
    rotates through the group on hintless failures (timeouts, crashes) --
    so a client rediscovers a migrated leader within one group's worth of
    retries, without reading any simulator-side truth.
    """

    def __init__(self, ring: ShardRing, groups: List[List[str]]) -> None:
        if len(groups) != ring.n_shards:
            raise ValueError(
                f"{len(groups)} groups for a {ring.n_shards}-shard ring"
            )
        self.ring = ring
        self.groups = [list(group) for group in groups]
        self._guess = [0] * len(groups)

    def route(self, file_id: int) -> str:
        """Endpoint to send this file's request to (current leader guess)."""
        shard = self.ring.shard_of(file_id)
        return self.groups[shard][self._guess[shard]]

    def note_failure(self, file_id: int, hint: Optional[str] = None) -> None:
        """Learn from a failed attempt: follow the hint or rotate."""
        shard = self.ring.shard_of(file_id)
        group = self.groups[shard]
        if hint is not None and hint in group:
            self._guess[shard] = group.index(hint)
        else:
            self._guess[shard] = (self._guess[shard] + 1) % len(group)


class MetaPlane:
    """All shard groups of the metadata plane, wired to one fabric."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        config: EEVFSConfig,
        streams: RandomStreams,
        nic_bps: float,
    ) -> None:
        self.sim = sim
        self.config = config
        self.ring = ShardRing(config.metadata_shards)
        self.n_shards = config.metadata_shards
        self.n_replicas = config.metadata_replicas
        self.groups: List[List[str]] = [
            [shard_server_name(shard, replica) for replica in range(self.n_replicas)]
            for shard in range(self.n_shards)
        ]
        self.requests_unroutable = 0
        self.writes_fanned_out = 0
        self._shard_stats = [ShardStats(shard=shard) for shard in range(self.n_shards)]
        #: Omniscient leader tracking for leaderless-time accounting.
        self._leaders: List[Optional[str]] = [None] * self.n_shards
        self._lost_at: List[float] = [0.0] * self.n_shards
        self._epoch: Optional[float] = None
        self._finalized = False
        #: Placement updates awaiting a leader, per shard.
        self._pending: List[List[Tuple[str, int, str]]] = [
            [] for _ in range(self.n_shards)
        ]
        self.servers: List[MetadataServer] = []
        self._by_name: dict[str, MetadataServer] = {}
        for shard in range(self.n_shards):
            group = tuple(self.groups[shard])
            for replica in range(self.n_replicas):
                server = MetadataServer(
                    sim,
                    fabric,
                    plane=self,
                    shard=shard,
                    replica_index=replica,
                    group=group,
                    config=config,
                    rng=streams.stream(f"meta:{group[replica]}"),
                    nic_bps=nic_bps,
                )
                self.servers.append(server)
                self._by_name[server.name] = server

    # -- wiring ---------------------------------------------------------------------

    def router(self) -> ShardRouter:
        """A fresh client-side router over this plane's shard map."""
        return ShardRouter(self.ring, self.groups)

    def server(self, name: str) -> MetadataServer:
        """Look up a replica by endpoint name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown metadata server: {name!r}") from None

    def bootstrap(self, metadata: ServerMetadata) -> None:
        """Copy the setup-time metadata into every replica, sharded.

        The initial placement is setup output (known before replay
        starts), so it is installed directly rather than replayed through
        the consensus log -- the log carries only *runtime* updates.
        """
        per_shard: List[List[Tuple[int, str, int, Tuple[str, ...]]]] = [
            [] for _ in range(self.n_shards)
        ]
        for entry in metadata.snapshot():
            per_shard[self.ring.shard_of(entry[0])].append(entry)
        down = metadata.down_nodes()
        for server in self.servers:
            server.load_snapshot(per_shard[server.shard], down)

    # -- node membership (zero-latency oracle, like the monolithic server) -----------

    def mark_node_down(self, node: str) -> None:
        for server in self.servers:
            server.state.mark_node_down(node)

    def mark_node_up(self, node: str) -> None:
        for server in self.servers:
            server.state.mark_node_up(node)

    # -- placement updates ------------------------------------------------------------

    def propose_add_replica(self, file_id: int, node: str) -> None:
        """Submit a placement update to the owning shard's leader.

        Leaderless shards queue the update; the next elected leader
        appends the backlog to its log before serving anything.
        """
        shard = self.ring.shard_of(file_id)
        leader_name = self._leaders[shard]
        if leader_name is not None:
            leader = self._by_name[leader_name]
            if leader.is_leader():
                leader.local_append("add_replica", file_id, node)
                return
        self._pending[shard].append(("add_replica", file_id, node))

    def drain_pending(self, shard: int) -> List[Tuple[str, int, str]]:
        """Hand the shard's queued updates to its new leader."""
        pending, self._pending[shard] = self._pending[shard], []
        return pending

    # -- fault hooks --------------------------------------------------------------------

    def crash_server(self, name: str) -> None:
        self.server(name).crash()

    def repair_server(self, name: str) -> None:
        self.server(name).repair()

    def leader_name(self, shard: int) -> Optional[str]:
        """The shard's current leader (omniscient; None while leaderless)."""
        self._check_shard(shard)
        return self._leaders[shard]

    def crash_leader(self, shard: int) -> Optional[str]:
        """Crash whoever currently leads *shard*; returns its name."""
        name = self.leader_name(shard)
        if name is not None:
            self._by_name[name].crash()
        return name

    def repair_shard(self, shard: int) -> List[str]:
        """Repair every crashed replica of *shard*; returns their names."""
        self._check_shard(shard)
        repaired = []
        for name in self.groups[shard]:
            server = self._by_name[name]
            if not server.alive:
                server.repair()
                repaired.append(name)
        return repaired

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.n_shards:
            raise KeyError(f"unknown shard: {shard!r}")

    # -- accounting (called by the servers) ----------------------------------------------

    def note_election(self, shard: int) -> None:
        self._shard_stats[shard].elections += 1

    def note_leader(self, shard: int, name: str, now: float) -> None:
        if self._leaders[shard] is None and self._epoch is not None:
            start = max(self._lost_at[shard], self._epoch)
            if now > start:
                self._shard_stats[shard].leaderless_s += now - start
        self._leaders[shard] = name

    def note_leader_lost(self, shard: int, name: str, now: float) -> None:
        if self._leaders[shard] == name:
            self._leaders[shard] = None
            self._lost_at[shard] = now

    def note_request(self, shard: int) -> None:
        self._shard_stats[shard].requests_routed += 1

    def note_rejection(self, shard: int) -> None:
        self._shard_stats[shard].not_leader_rejections += 1

    def note_commit(self, shard: int) -> None:
        self._shard_stats[shard].proposals_committed += 1

    # -- measurement window ---------------------------------------------------------------

    def reset_measurement(self, epoch_s: float) -> None:
        """Open the measurement window (leaderless time counts from here)."""
        self._epoch = epoch_s
        for stats in self._shard_stats:
            stats.leaderless_s = 0.0

    def finalize(self, end_s: float) -> None:
        """Close the window: charge still-leaderless shards up to *end_s*."""
        if self._finalized:
            return
        self._finalized = True
        if self._epoch is None:
            return
        for shard in range(self.n_shards):
            if self._leaders[shard] is None:
                start = max(self._lost_at[shard], self._epoch)
                if end_s > start:
                    self._shard_stats[shard].leaderless_s += end_s - start

    def snapshot(self) -> MetaPlaneStats:
        """Freeze the availability metrics into plain data."""
        shards: List[ShardStats] = []
        for shard in range(self.n_shards):
            stats = self._shard_stats[shard]
            stats.term = max(
                server.term for server in self.servers if server.shard == shard
            )
            shards.append(
                ShardStats(
                    shard=stats.shard,
                    elections=stats.elections,
                    leaderless_s=stats.leaderless_s,
                    term=stats.term,
                    requests_routed=stats.requests_routed,
                    not_leader_rejections=stats.not_leader_rejections,
                    proposals_committed=stats.proposals_committed,
                )
            )
        return MetaPlaneStats(
            n_shards=self.n_shards,
            n_replicas=self.n_replicas,
            elections=sum(s.elections for s in shards),
            leaderless_s=sum(s.leaderless_s for s in shards),
            requests_routed=sum(s.requests_routed for s in shards),
            not_leader_rejections=sum(s.not_leader_rejections for s in shards),
            requests_unroutable=self.requests_unroutable,
            proposals_committed=sum(s.proposals_committed for s in shards),
            writes_fanned_out=self.writes_fanned_out,
            shards=shards,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetaPlane shards={self.n_shards} replicas={self.n_replicas}>"
