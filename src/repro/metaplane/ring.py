"""Consistent hashing of file ids onto metadata shards.

A :class:`ShardRing` places ``vnodes`` virtual points per shard on a
64-bit hash ring; a file id is hashed onto the ring and owned by the
first shard point clockwise from it.  The mapping is a pure function of
``(n_shards, vnodes, file_id)`` -- no randomness, no insertion-order
dependence -- so every component (client router, metadata servers, the
placement controller) derives the identical shard map independently, and
two same-seed runs agree byte for byte.

Consistent hashing (rather than ``file_id % n_shards``) keeps the map
stable under resharding: growing from *n* to *n+1* shards moves only the
keys that land on the new shard's points, which is what would make an
online shard-split affordable (future work; see docs/metadata-plane.md).
"""

from __future__ import annotations

import bisect
import hashlib


def stable_hash64(key: str) -> int:
    """A stable (process- and run-independent) 64-bit hash of *key*.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), so
    anything that feeds placement must come through here instead.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """A fixed ring of ``n_shards`` shards with ``vnodes`` points each."""

    __slots__ = ("n_shards", "vnodes", "_points", "_owners")

    def __init__(self, n_shards: int, vnodes: int = 64) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes!r}")
        self.n_shards = n_shards
        self.vnodes = vnodes
        pairs = sorted(
            (stable_hash64(f"shard{shard}:{v}"), shard)
            for shard in range(n_shards)
            for v in range(vnodes)
        )
        self._points = [h for h, _ in pairs]
        self._owners = [shard for _, shard in pairs]

    def shard_of(self, file_id: int) -> int:
        """The shard owning *file_id* (first ring point clockwise)."""
        if self.n_shards == 1:
            return 0
        h = stable_hash64(f"file:{file_id}")
        index = bisect.bisect_right(self._points, h)
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ShardRing shards={self.n_shards} vnodes={self.vnodes}>"
