"""The consensus wire vocabulary of the metadata plane.

These ride the same :mod:`repro.net.fabric` as the EEVFS protocol
messages -- control-sized payloads between metadata-server replicas.
The vocabulary is the minimal Raft subset the plane needs: vote
solicitation and log replication (heartbeats are empty AppendEntries,
exactly as in Raft).

Log entries carry *placement updates* -- the only metadata that changes
after setup is which nodes hold which file (background re-replication);
reads are served from the leader's state machine and never enter the log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: The only state-machine operation the log carries today.  A closed
#: vocabulary (like ``SPAN_KINDS``) so fingerprints and fixtures stay
#: stable as operations are added.
OP_ADD_REPLICA = "add_replica"


@dataclass(frozen=True)
class LogEntry:
    """One replicated state-machine command (a placement update)."""

    term: int
    op: str
    file_id: int
    node: str


@dataclass(frozen=True)
class VoteRequest:
    """Candidate -> peers: elect me for *term*.

    ``last_log_index``/``last_log_term`` implement Raft's election
    restriction: a voter refuses candidates whose log is behind its own,
    so a stale replica can never win leadership and roll back commits.
    """

    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class VoteReply:
    """Peer -> candidate: my vote for *term* (or a newer-term rebuff)."""

    term: int
    voter: str
    granted: bool


@dataclass(frozen=True)
class AppendEntries:
    """Leader -> followers: replicate log entries / assert leadership.

    An empty ``entries`` tuple is a pure heartbeat.  ``prev_index`` /
    ``prev_term`` are the consistency check: the follower accepts only if
    its log matches at that point, otherwise the leader backs
    ``next_index`` up and retries from earlier.
    """

    term: int
    leader: str
    prev_index: int
    prev_term: int
    entries: Tuple[LogEntry, ...]
    commit_index: int


@dataclass(frozen=True)
class AppendReply:
    """Follower -> leader: append outcome.

    ``match_index`` (valid when ``ok``) is the highest log index now
    known replicated on the follower; the leader advances its commit
    point once a majority matches.
    """

    term: int
    follower: str
    ok: bool
    match_index: int
