"""The sharded, consensus-backed metadata plane (ROADMAP item 1).

The paper's storage server is a single thin metadata process; one fault
anywhere in the metadata path takes the whole cluster offline.  This
package shards the server's file -> node map across multiple simulated
metadata servers (consistent hashing over file ids), replicates each
shard across a configurable replica group, and keeps every shard serving
lookups through server crashes with a sim-time leader-election protocol
(simplified Raft: terms, randomized-but-seeded election timeouts,
log-replicated placement updates).

Layout:

* :mod:`repro.metaplane.ring` -- consistent hashing of file ids to shards,
* :mod:`repro.metaplane.messages` -- the consensus wire vocabulary,
* :mod:`repro.metaplane.server` -- one metadata-server replica (election,
  log replication, request routing when leader),
* :mod:`repro.metaplane.plane` -- the facade wiring shard groups together,
  plus the client-side router and the availability statistics.
"""

from repro.metaplane.plane import MetaPlane, MetaPlaneStats, ShardRouter, ShardStats
from repro.metaplane.ring import ShardRing
from repro.metaplane.server import MetadataServer

__all__ = [
    "MetaPlane",
    "MetaPlaneStats",
    "MetadataServer",
    "ShardRing",
    "ShardRouter",
    "ShardStats",
]
