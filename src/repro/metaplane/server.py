"""One metadata-server replica: election, log replication, routing.

A :class:`MetadataServer` is a member of one shard's replica group.  It
owns a fabric endpoint (``meta-s<shard>-r<replica>``), a full copy of the
shard's :class:`~repro.core.metadata.ServerMetadata` state machine, and a
Raft-lite consensus role:

* **follower** -- resets its election timer on every heartbeat; when the
  timer fires (the leader went quiet), it stands for election.
* **candidate** -- solicits votes for an incremented term; a majority
  makes it leader, a newer term or a valid heartbeat demotes it.
* **leader** -- sends heartbeats (empty AppendEntries) every
  ``meta_heartbeat_interval_s``, replicates placement updates through the
  log, commits them on majority match, and serves the request plane:
  lookups are answered from its local state machine exactly the way the
  monolithic :class:`~repro.core.server.StorageServer` answers them
  (per-request CPU overhead serialised in the main loop, so sharding
  genuinely divides the §III-A server bottleneck).

Election timeouts are drawn from the replica's own named RNG stream
(``meta:<name>``), so they are randomized *and* seeded: two same-seed
runs elect the same leaders at the same simulated times.

A crash (``crash()``) silences the replica -- inbound messages drain to
nowhere, no timers act -- but preserves term, vote and log, mirroring a
process restart with persistent Raft state: an outage is not data loss.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.config import EEVFSConfig
from repro.core.metadata import ServerMetadata
from repro.core.protocol import FileRequest, ForwardedRequest, RequestFailed
from repro.metaplane.messages import (
    AppendEntries,
    AppendReply,
    LogEntry,
    OP_ADD_REPLICA,
    VoteRequest,
    VoteReply,
)
from repro.net.fabric import Fabric
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.traces.model import RequestOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metaplane.plane import MetaPlane

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"


class MetadataServer:
    """One replica of one metadata shard."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        plane: "MetaPlane",
        shard: int,
        replica_index: int,
        group: Tuple[str, ...],
        config: EEVFSConfig,
        rng: np.random.Generator,
        nic_bps: float,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.plane = plane
        self.shard = shard
        self.replica_index = replica_index
        self.name = group[replica_index]
        self.group = group
        self.peers: Tuple[str, ...] = tuple(
            name for name in group if name != self.name
        )
        self.config = config
        self.rng = rng
        self.endpoint = fabric.add_endpoint(self.name, nic_bps)
        #: This replica's copy of the shard's state machine.
        self.state = ServerMetadata()
        self.alive = True

        # -- Raft persistent state (survives crash()/repair()) ---------------
        self.term = 0
        self.voted_for: Optional[str] = None
        self.log: List[LogEntry] = []

        # -- Raft volatile state ----------------------------------------------
        self.role = FOLLOWER
        self.commit_index = -1
        self.last_applied = -1
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        self._votes: Set[str] = set()
        #: Where this replica last saw leadership (returned to clients as a
        #: routing hint on not-leader rejections).
        self.leader_hint: Optional[str] = None
        self._election_deadline = 0.0
        self._reset_election_deadline()
        self.sim.process(self._main_loop())
        self.sim.process(self._election_loop())

    @property
    def _majority(self) -> int:
        return len(self.group) // 2 + 1

    def is_leader(self) -> bool:
        return self.alive and self.role == LEADER

    # -- bootstrap -----------------------------------------------------------------

    def load_snapshot(
        self,
        entries: List[Tuple[int, str, int, Tuple[str, ...]]],
        down_nodes: List[str],
    ) -> None:
        """Install the setup-time metadata for this shard's files.

        Called once by the plane after cluster setup, before replay: every
        replica receives the identical snapshot directly (the initial
        placement is setup output, not runtime consensus traffic).
        """
        for file_id, node, size_bytes, replicas in entries:
            self.state.register(file_id, node, size_bytes)
            for holder in replicas:
                self.state.add_replica(file_id, holder)
        for node in down_nodes:
            self.state.mark_node_down(node)

    # -- fault hooks (driven by FaultInjector via the plane) -------------------------

    def crash(self) -> None:
        """Kill the replica: it stops speaking and hearing until repaired."""
        if not self.alive:
            return
        self.alive = False
        if self.role == LEADER:
            self.plane.note_leader_lost(self.shard, self.name, self.sim.now)
        self.role = FOLLOWER

    def repair(self) -> None:
        """Restart the replica as a follower with its persistent state."""
        if self.alive:
            return
        self.alive = True
        self.role = FOLLOWER
        self._reset_election_deadline()

    # -- election timer -------------------------------------------------------------

    def _reset_election_deadline(self) -> None:
        self._election_deadline = self.sim.now + float(
            self.rng.uniform(
                self.config.meta_election_timeout_min_s,
                self.config.meta_election_timeout_max_s,
            )
        )

    def _election_loop(self) -> Generator[Event, Any, None]:
        while True:
            delay = self._election_deadline - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
                continue
            if self.alive and self.role != LEADER:
                self._start_election()
            self._reset_election_deadline()

    def _start_election(self) -> None:
        self.term += 1
        self.role = CANDIDATE
        self.voted_for = self.name
        self._votes = {self.name}
        self.leader_hint = None
        self.plane.note_election(self.shard)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("meta.election", self.name, term=self.term)
        if len(self.group) == 1:
            self._become_leader()
            return
        last_index = len(self.log) - 1
        last_term = self.log[last_index].term if last_index >= 0 else 0
        for peer in self.peers:
            self.fabric.send_nowait(
                self.name,
                peer,
                VoteRequest(
                    term=self.term,
                    candidate=self.name,
                    last_log_index=last_index,
                    last_log_term=last_term,
                ),
            )

    # -- role transitions -------------------------------------------------------------

    def _observe_term(self, term: int) -> None:
        """A higher term (or an equal-term leader) demotes us to follower."""
        was_leader = self.role == LEADER
        if term > self.term:
            self.term = term
            self.voted_for = None
        self.role = FOLLOWER
        if was_leader:
            self.plane.note_leader_lost(self.shard, self.name, self.sim.now)

    def _become_leader(self) -> None:
        self.role = LEADER
        self.leader_hint = self.name
        last = len(self.log)
        self.next_index = {peer: last for peer in self.peers}
        self.match_index = {peer: -1 for peer in self.peers}
        self.plane.note_leader(self.shard, self.name, self.sim.now)
        # Placement updates that arrived while the shard was leaderless.
        for op, file_id, node in self.plane.drain_pending(self.shard):
            self.log.append(LogEntry(term=self.term, op=op, file_id=file_id, node=node))
        self._advance_commit()
        if self.peers:
            self.sim.process(self._leader_loop(self.term))

    def _leader_loop(self, term: int) -> Generator[Event, Any, None]:
        """Heartbeat + replication round every heartbeat interval."""
        interval = self.config.meta_heartbeat_interval_s
        while self.alive and self.role == LEADER and self.term == term:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant("meta.heartbeat", self.name, term=term)
            for peer in self.peers:
                self._send_append(peer)
            yield self.sim.timeout(interval)

    def _send_append(self, peer: str) -> None:
        next_index = self.next_index[peer]
        prev_index = next_index - 1
        prev_term = self.log[prev_index].term if prev_index >= 0 else 0
        self.fabric.send_nowait(
            self.name,
            peer,
            AppendEntries(
                term=self.term,
                leader=self.name,
                prev_index=prev_index,
                prev_term=prev_term,
                entries=tuple(self.log[next_index:]),
                commit_index=self.commit_index,
            ),
        )

    # -- the replicated log -------------------------------------------------------------

    def local_append(self, op: str, file_id: int, node: str) -> None:
        """Leader-side entry point for a new placement update.

        The entry replicates to followers on the next heartbeat round and
        commits on majority match; a single-replica group commits at once.
        """
        if self.role != LEADER:
            raise RuntimeError(f"{self.name} is not leader")
        self.log.append(
            LogEntry(term=self.term, op=op, file_id=file_id, node=node)
        )
        self._advance_commit()

    def _advance_commit(self) -> None:
        """Leader: commit the highest index a majority has matched."""
        ranked = sorted(
            [len(self.log) - 1, *self.match_index.values()], reverse=True
        )
        candidate = ranked[self._majority - 1]
        # Raft §5.4.2: only entries from the *current* term commit by
        # counting; earlier-term entries commit transitively behind them.
        if candidate > self.commit_index and self.log[candidate].term == self.term:
            self.commit_index = candidate
            self._apply_committed()

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            self._apply(self.log[self.last_applied])
            if self.role == LEADER:
                self.plane.note_commit(self.shard)

    def _apply(self, entry: LogEntry) -> None:
        if entry.op == OP_ADD_REPLICA:
            # Idempotent: a leader change can re-deliver the same update.
            if (
                entry.file_id in self.state
                and entry.node not in self.state.holders(entry.file_id)
            ):
                self.state.add_replica(entry.file_id, entry.node)
        else:  # pragma: no cover - closed op vocabulary
            raise ValueError(f"unknown log op: {entry.op!r}")

    # -- message plane -------------------------------------------------------------------

    def _main_loop(self) -> Generator[Event, Any, None]:
        while True:
            message = yield self.endpoint.receive()
            if not self.alive:
                continue  # a crashed process answers nothing
            payload = message.payload
            if isinstance(payload, FileRequest):
                yield from self._handle_request(payload)
            elif isinstance(payload, VoteRequest):
                self._on_vote_request(payload)
            elif isinstance(payload, VoteReply):
                self._on_vote_reply(payload)
            elif isinstance(payload, AppendEntries):
                self._on_append(payload)
            elif isinstance(payload, AppendReply):
                self._on_append_reply(payload)
            else:  # pragma: no cover - defensive
                raise TypeError(f"metadata server cannot handle {payload!r}")

    # -- consensus handlers ----------------------------------------------------------

    def _on_vote_request(self, msg: VoteRequest) -> None:
        if msg.term > self.term:
            self._observe_term(msg.term)
        granted = False
        if (
            msg.term == self.term
            and self.voted_for in (None, msg.candidate)
            and self._log_up_to_date(msg)
        ):
            granted = True
            self.voted_for = msg.candidate
            self._reset_election_deadline()
        self.fabric.send_nowait(
            self.name,
            msg.candidate,
            VoteReply(term=self.term, voter=self.name, granted=granted),
        )

    def _log_up_to_date(self, msg: VoteRequest) -> bool:
        last_index = len(self.log) - 1
        last_term = self.log[last_index].term if last_index >= 0 else 0
        return (msg.last_log_term, msg.last_log_index) >= (last_term, last_index)

    def _on_vote_reply(self, msg: VoteReply) -> None:
        if msg.term > self.term:
            self._observe_term(msg.term)
            return
        if self.role != CANDIDATE or msg.term != self.term:
            return
        if msg.granted:
            self._votes.add(msg.voter)
            if len(self._votes) >= self._majority:
                self._become_leader()

    def _on_append(self, msg: AppendEntries) -> None:
        if msg.term < self.term:
            self.fabric.send_nowait(
                self.name,
                msg.leader,
                AppendReply(
                    term=self.term, follower=self.name, ok=False, match_index=-1
                ),
            )
            return
        if msg.term > self.term or self.role != FOLLOWER:
            self._observe_term(msg.term)
        self.leader_hint = msg.leader
        self._reset_election_deadline()
        if msg.prev_index >= 0 and (
            msg.prev_index >= len(self.log)
            or self.log[msg.prev_index].term != msg.prev_term
        ):
            # Log mismatch: the leader backs next_index up and retries.
            ok, match = False, -1
        else:
            del self.log[msg.prev_index + 1 :]
            self.log.extend(msg.entries)
            ok, match = True, msg.prev_index + len(msg.entries)
            if msg.commit_index > self.commit_index:
                self.commit_index = min(msg.commit_index, len(self.log) - 1)
                self._apply_committed()
        self.fabric.send_nowait(
            self.name,
            msg.leader,
            AppendReply(term=self.term, follower=self.name, ok=ok, match_index=match),
        )

    def _on_append_reply(self, msg: AppendReply) -> None:
        if msg.term > self.term:
            self._observe_term(msg.term)
            return
        if self.role != LEADER or msg.term != self.term:
            return
        if msg.ok:
            matched = max(self.match_index[msg.follower], msg.match_index)
            self.match_index[msg.follower] = matched
            self.next_index[msg.follower] = matched + 1
            self._advance_commit()
        else:
            self.next_index[msg.follower] = max(0, self.next_index[msg.follower] - 1)

    # -- request plane (the StorageServer forwarding path, sharded) ---------------------

    def _handle_request(
        self, payload: FileRequest
    ) -> Generator[Event, Any, None]:
        if self.role != LEADER:
            self.plane.note_rejection(self.shard)
            self.fabric.send_nowait(
                self.name,
                payload.client,
                RequestFailed(
                    request_id=payload.request_id,
                    file_id=payload.file_id,
                    reason="not leader",
                    hint=None if self.leader_hint == self.name else self.leader_hint,
                ),
            )
            return
        tracer = self.sim.tracer
        lookup = None
        if tracer is not None:
            lookup = tracer.begin(
                "server.lookup",
                self.name,
                parent=tracer.request_span(payload.request_id),
                file_id=payload.file_id,
                shard=self.shard,
            )
        # Serialised in the main loop: the per-request CPU cost queues
        # here, so each shard is its own (smaller) §III-A bottleneck.
        if self.config.server_overhead_s > 0:
            yield self.sim.timeout(self.config.server_overhead_s)
        self.plane.note_request(self.shard)
        if payload.file_id not in self.state:
            holders: List[str] = []
        else:
            holders = self.state.live_holders(payload.file_id)
        if not holders:
            self.plane.requests_unroutable += 1
            self.fabric.send_nowait(
                self.name,
                payload.client,
                RequestFailed(
                    request_id=payload.request_id,
                    file_id=payload.file_id,
                    reason="no live holder",
                ),
            )
            if lookup is not None and tracer is not None:
                tracer.end(lookup, routed=False)
            return
        primary, backups = holders[0], tuple(holders[1:])
        self.fabric.send_nowait(
            self.name,
            primary,
            ForwardedRequest(request=payload, failover=backups),
        )
        if lookup is not None and tracer is not None:
            tracer.end(lookup, routed=True, node=primary)
        if (
            payload.op is RequestOp.WRITE
            and self.config.replicate_writes
            and backups
        ):
            for holder in backups:
                self.fabric.send_nowait(
                    self.name,
                    holder,
                    ForwardedRequest(request=payload, silent=True),
                )
                self.plane.writes_fanned_out += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetadataServer {self.name} {self.role} term={self.term}>"
