#!/usr/bin/env python3
"""Scenario: how much do the calibrated power numbers matter?

The paper never publishes its drives' power figures; DESIGN.md documents
the calibration this reproduction chose.  This study shows the analysis
toolkit earning its keep:

1. the closed-form energy model predicting the simulator's totals,
2. the savings grid under power-model perturbation,
3. the M/G/1 check on a single disk's response time.

Run:  python examples/calibration_study.py
"""

import numpy as np

from repro import EEVFSConfig, default_cluster, run_eevfs
from repro.analysis import (
    mg1_mean_response_s,
    predicted_npf_energy_j,
    predicted_pf_energy_j,
)
from repro.analysis.energymodel import observed_sleep_fraction
from repro.analysis.queueing import deterministic_second_moment
from repro.experiments.sensitivity import (
    power_model_sensitivity,
    render_sensitivity,
)
from repro.traces import generate_synthetic_trace
from repro.traces.synthetic import SyntheticWorkload


def main() -> None:
    trace = generate_synthetic_trace(
        SyntheticWorkload(n_requests=600), rng=np.random.default_rng(1)
    )
    cluster = default_cluster()

    print("--- 1. closed-form energy vs simulator ---")
    npf = run_eevfs(trace, EEVFSConfig(prefetch_enabled=False))
    pf = run_eevfs(trace, EEVFSConfig())
    predicted_npf = predicted_npf_energy_j(cluster, trace, duration_s=npf.duration_s)
    predicted_pf = predicted_pf_energy_j(
        cluster,
        trace,
        hit_rate=pf.buffer_hit_rate,
        sleep_fraction=observed_sleep_fraction(pf),
        transitions_per_disk=pf.transitions / cluster.n_data_disks,
        duration_s=pf.duration_s,
    )
    for label, measured, predicted in (
        ("NPF", npf.energy_j, predicted_npf.total_j),
        ("PF", pf.energy_j, predicted_pf.total_j),
    ):
        error = 100 * (predicted / measured - 1)
        print(
            f"{label:4s} measured {measured / 1e5:.3f}e5 J, "
            f"predicted {predicted / 1e5:.3f}e5 J ({error:+.1f} %)"
        )

    print("\n--- 2. conclusions vs calibration (savings %, perturbed grid) ---")
    grid = power_model_sensitivity(trace=trace)
    print(render_sensitivity(grid))
    print(
        "PF wins on the whole grid: the headline conclusion does not "
        "hinge on the\ncalibrated watts, only its magnitude does."
    )

    print("\n--- 3. M/G/1 sanity check on one disk ---")
    from repro.disk import ATA_80GB_TYPE1, SimDisk
    from repro.sim import Simulator

    size = 8 * 1024 * 1024
    service = ATA_80GB_TYPE1.positioning_s + size / ATA_80GB_TYPE1.bandwidth_bps
    rate = 0.5 / service  # rho = 0.5
    sim = Simulator()
    disk = SimDisk(sim, ATA_80GB_TYPE1)
    responses = []

    def watch(request, issued):
        yield request.done
        responses.append(sim.now - issued)

    def client():
        rng = np.random.default_rng(7)
        for gap in rng.exponential(1.0 / rate, size=3000):
            yield sim.timeout(gap)
            sim.process(watch(disk.submit(size), sim.now))

    sim.process(client())
    sim.run()
    measured = float(np.mean(responses))
    expected = mg1_mean_response_s(rate, service, deterministic_second_moment(service))
    print(
        f"rho=0.5 M/D/1: measured {measured * 1000:.1f} ms, "
        f"Pollaczek-Khinchine {expected * 1000:.1f} ms "
        f"({100 * (measured / expected - 1):+.1f} %)"
    )


if __name__ == "__main__":
    main()
