#!/usr/bin/env python3
"""Scenario: operating from logs -- trace files and stale popularity.

The paper's prototype derives popularity from the very trace it replays
(an oracle).  Operationally, placement and prefetch decisions come from
*yesterday's* access log.  This example:

1. writes today's workload to a trace file and reads it back (the
   persistent log format),
2. replays it with oracle popularity vs popularity from an older trace,
3. reports how much of the savings survives stale knowledge.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import EEVFSConfig
from repro.baselines import run_oracle, run_npf, run_with_stale_popularity
from repro.metrics import format_table
from repro.traces import generate_synthetic_trace, read_trace, write_trace
from repro.traces.synthetic import SyntheticWorkload


def main() -> None:
    workload = SyntheticWorkload(n_requests=600)
    today = generate_synthetic_trace(workload, rng=np.random.default_rng(10))
    yesterday = generate_synthetic_trace(workload, rng=np.random.default_rng(20))

    # 1. Round-trip through the on-disk trace format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "today.trace"
        write_trace(today, path)
        replayed = read_trace(path)
        print(
            f"trace file round trip: {path.name}, "
            f"{replayed.n_requests} requests, {path.stat().st_size} bytes"
        )

    # 2. Oracle vs stale popularity vs no prefetch at all.
    config = EEVFSConfig(prefetch_files=70)
    oracle = run_oracle(replayed, config)
    stale = run_with_stale_popularity(replayed, yesterday, config)
    npf = run_npf(replayed)

    rows = [
        ["oracle (paper's method)", oracle.energy_j, oracle.buffer_hit_rate],
        ["stale (yesterday's log)", stale.energy_j, stale.buffer_hit_rate],
        ["no prefetch (NPF)", npf.energy_j, npf.buffer_hit_rate],
    ]
    print()
    print(format_table(["popularity source", "energy_J", "hit_rate"], rows))

    oracle_savings = 100 * (1 - oracle.energy_j / npf.energy_j)
    stale_savings = 100 * (1 - stale.energy_j / npf.energy_j)
    print(f"\noracle savings {oracle_savings:.1f} %, stale savings {stale_savings:.1f} %")
    if oracle_savings > 0:
        print(
            f"stale knowledge retains {100 * stale_savings / oracle_savings:.0f} % "
            "of the achievable savings"
        )


if __name__ == "__main__":
    main()
