#!/usr/bin/env python3
"""Scenario: hardware dies mid-run -- what survives, and at what cost?

Three escalating drills on one synthetic workload:

1. *Buffer copies as accidental replicas* -- EEVFS proper has no
   replication, but prefetched files keep serving reads after their data
   disk dies.  Larger K shields more of the request stream.
2. *Whole-node crash* -- buffer copies die with their node; only real
   cross-node replication (``replication_factor=2``) keeps availability
   at 100%, and background re-replication restores the factor.
3. *Stochastic fault storm* -- exponential MTBF/MTTR failures across all
   data disks, reproducible from the seed (the fault log is identical
   run to run).

Run:  python examples/failure_drill.py
"""

import numpy as np

from repro import EEVFSConfig
from repro.core.filesystem import EEVFSCluster
from repro.faults import FaultSchedule
from repro.metrics import format_table, summary_table
from repro.traces import generate_synthetic_trace
from repro.traces.synthetic import SyntheticWorkload


def make_trace():
    return generate_synthetic_trace(
        SyntheticWorkload(n_requests=800), rng=np.random.default_rng(6)
    )


def disk_schedule():
    return (
        FaultSchedule()
        .disk_fail("node1/data0", at=60.0)  # a type-1 node
        .disk_fail("node5/data1", at=120.0)  # a type-2 node
    )


def drill_disks(trace) -> None:
    """Drill 1: two dead data disks vs prefetch depth."""
    rows = []
    for label, config in (
        ("NPF (no prefetch)", EEVFSConfig(prefetch_enabled=False)),
        ("PF, K=70", EEVFSConfig(prefetch_files=70)),
        ("PF, K=150", EEVFSConfig(prefetch_files=150)),
    ):
        result = EEVFSCluster(config=config, faults=disk_schedule()).run(trace)
        rows.append(
            [
                label,
                result.requests_total,
                result.requests_failed,
                f"{result.availability:.1%}",
            ]
        )
    print("drill 1 -- two data disks fail at t=60 s and t=120 s:\n")
    print(format_table(["policy", "served", "failed", "availability"], rows))
    print(
        "\nPrefetching doubles as cheap read-availability: every buffer "
        "copy is a replica\nof a hot file, so larger K shields more of "
        "the request stream from dead spindles.\n"
    )


def drill_node(trace) -> None:
    """Drill 2: a whole node crashes; only replication rides it out."""
    results = {}
    for label, config in (
        ("PF, no replication", EEVFSConfig()),
        ("PF + 2-way replicas", EEVFSConfig(replication_factor=2)),
    ):
        schedule = FaultSchedule().node_fail("node3", at=90.0)
        results[label] = EEVFSCluster(config=config, faults=schedule).run(trace)
    print("drill 2 -- node3 (and its buffer disk) crashes at t=90 s:\n")
    print(summary_table(results))
    replicated = results["PF + 2-way replicas"]
    print(
        f"\nre-replication: {replicated.repairs_completed} files recopied "
        f"({replicated.repair_bytes_copied / 1e6:.0f} MB), "
        f"{replicated.under_replicated_files} still under-replicated at end\n"
    )


def drill_storm(trace) -> None:
    """Drill 3: seeded random failures; the fault log is reproducible."""
    def run(seed):
        schedule = FaultSchedule().exponential_faults(
            [f"node{n}/data{d}" for n in range(1, 9) for d in range(2)],
            mtbf_s=trace.duration_s,
            horizon_s=trace.duration_s,
            mttr_s=120.0,
        )
        cluster = EEVFSCluster(
            config=EEVFSConfig(replication_factor=2), seed=seed, faults=schedule
        )
        return cluster.run(trace)

    first, second = run(seed=0), run(seed=0)
    assert first.fault_log == second.fault_log  # same seed, same storm
    print("drill 3 -- exponential fault storm (seed 0), logged events:\n")
    print(first.fault_log.render())
    print(
        f"\navailability {first.availability:.1%} with "
        f"{first.fault_events} fault events; rerunning the seed reproduces "
        "this log event for event."
    )


def main() -> None:
    trace = make_trace()
    drill_disks(trace)
    drill_node(trace)
    drill_storm(trace)


if __name__ == "__main__":
    main()
