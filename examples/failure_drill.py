#!/usr/bin/env python3
"""Scenario: a disk dies mid-run -- what survives?

EEVFS has no replication, but its buffer-disk copies turn out to act as
accidental replicas: reads of prefetched files keep succeeding after
their data disk fails.  This drill kills one data disk per node type at
different times and reports availability with and without prefetching.

Run:  python examples/failure_drill.py
"""

import numpy as np

from repro import EEVFSConfig
from repro.core.filesystem import EEVFSCluster
from repro.metrics import format_table
from repro.traces import generate_synthetic_trace
from repro.traces.synthetic import SyntheticWorkload


def drill(config: EEVFSConfig, fail_at_s: float):
    trace = generate_synthetic_trace(
        SyntheticWorkload(n_requests=800), rng=np.random.default_rng(6)
    )
    cluster = EEVFSCluster(config=config)
    cluster.nodes[0].data_disks[0].fail_at(fail_at_s)  # a type-1 node
    cluster.nodes[4].data_disks[1].fail_at(fail_at_s * 2)  # a type-2 node
    result = cluster.run(trace)
    served = result.requests_total
    failed = result.requests_failed
    return {
        "served": served,
        "failed": failed,
        "availability": served / (served + failed),
        "energy_j": result.energy_j,
    }


def main() -> None:
    rows = []
    for label, config in (
        ("NPF (no prefetch)", EEVFSConfig(prefetch_enabled=False)),
        ("PF, K=70", EEVFSConfig(prefetch_files=70)),
        ("PF, K=150", EEVFSConfig(prefetch_files=150)),
    ):
        outcome = drill(config, fail_at_s=60.0)
        rows.append(
            [
                label,
                outcome["served"],
                outcome["failed"],
                f"{outcome['availability']:.1%}",
            ]
        )
    print("two data disks fail at t=60 s and t=120 s:\n")
    print(format_table(["policy", "served", "failed", "availability"], rows))
    print(
        "\nPrefetching doubles as cheap read-availability: every buffer "
        "copy is a replica\nof a hot file, so larger K shields more of "
        "the request stream from dead spindles."
    )


if __name__ == "__main__":
    main()
