#!/usr/bin/env python3
"""Scenario: driving EEVFS with a block-level trace.

Public storage traces (MSR Cambridge, SPC) are block-level; EEVFS works
on files.  This example fabricates a small MSR-format CSV (standing in
for a downloaded trace), imports it through the extent-mapping importer,
inspects the resulting workload, and runs the PF/NPF comparison on it.

Swap the fabricated CSV for a real `*.csv` from the SNIA IOTTA
repository and the rest of the pipeline is unchanged.

Run:  python examples/block_trace_import.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import EEVFSConfig, run_eevfs
from repro.metrics import compare
from repro.traces import read_msr_trace
from repro.traces.stats import summarize

TICKS_PER_S = 10_000_000  # Windows FILETIME
MB = 1024 * 1024


def fabricate_msr_csv(path: Path, n_records: int = 800) -> None:
    """A skewed block workload in MSR's CSV format."""
    rng = np.random.default_rng(11)
    lines = []
    for i in range(n_records):
        ticks = int(i * 0.8 * TICKS_PER_S)
        # 80 % of accesses hit a 200 MB hot region; the rest roam 8 GB.
        if rng.random() < 0.8:
            offset = int(rng.integers(0, 200 * MB))
        else:
            offset = int(rng.integers(0, 8192 * MB))
        op = "Read" if rng.random() < 0.9 else "Write"
        lines.append(f"{ticks},srv0,{int(rng.integers(0, 2))},{op},{offset},65536,0")
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "msr_like.csv"
        fabricate_msr_csv(csv_path)
        trace = read_msr_trace(csv_path, extent_bytes=10 * MB)

    print("--- imported workload ---")
    for key, value in summarize(trace).items():
        print(f"{key:22s} {value}")

    pf = run_eevfs(trace, EEVFSConfig(prefetch_files=70))
    npf = run_eevfs(trace, EEVFSConfig(prefetch_enabled=False))
    comparison = compare(pf, npf)
    print("\n--- EEVFS on the imported trace ---")
    print(f"savings     {comparison.energy_savings_pct:.1f} %")
    print(f"hit rate    {pf.buffer_hit_rate:.0%}")
    print(f"penalty     {comparison.response_penalty_pct:.1f} %")
    print(f"writes      {pf.writes_buffered} buffered, {pf.writes_direct} direct")


if __name__ == "__main__":
    main()
