#!/usr/bin/env python3
"""Scenario: popularity drift and dynamic re-prefetching.

The paper prefetches once, before the run, from a popularity log -- fine
while the hot set is stable.  This example builds a *drifting* workload
(the hotspot moves ~350 files over the run), shows static prefetching
decaying, and turns on the PRE-BUD-style dynamic re-prefetcher
(`reprefetch_interval_s`) to track the hot set -- including what the
tracking costs in copy traffic and drive wear.

Run:  python examples/dynamic_prefetching.py
"""

import numpy as np

from repro import EEVFSConfig
from repro.core.filesystem import EEVFSCluster
from repro.metrics import format_table
from repro.metrics.wear import wear_report
from repro.traces.nonstationary import (
    DriftingWorkload,
    generate_drifting_trace,
    hot_set_displacement,
)


def main() -> None:
    workload = DriftingWorkload(n_requests=1000)
    trace = generate_drifting_trace(workload, rng=np.random.default_rng(3))
    history = trace.head(150)  # all the operator knew before the run
    print(
        f"hotspot moves {hot_set_displacement(workload):.0f} files over the "
        f"{trace.duration_s:.0f} s run; popularity snapshot taken from the "
        f"first {history.n_requests} requests"
    )

    def run(config):
        return EEVFSCluster(config=config).run(trace, history=history)

    npf = run(EEVFSConfig(prefetch_enabled=False))
    static = run(EEVFSConfig())
    dynamic = run(
        EEVFSConfig(reprefetch_interval_s=30.0, popularity_window_s=60.0)
    )

    rows = []
    for name, result in (
        ("NPF", npf),
        ("static prefetch", static),
        ("dynamic re-prefetch", dynamic),
    ):
        report = wear_report(result)
        worst_years = (
            report.worst.years_to_limit if report.worst is not None else float("inf")
        )
        rows.append(
            [
                name,
                result.energy_j,
                result.buffer_hit_rate,
                result.mean_response_s,
                result.prefetch_files_copied,
                worst_years,
            ]
        )
    print()
    print(
        format_table(
            [
                "policy",
                "energy_J",
                "hit_rate",
                "response_s",
                "files_copied",
                "worst_disk_years",
            ],
            rows,
        )
    )

    savings_static = 100 * (1 - static.energy_j / npf.energy_j)
    savings_dynamic = 100 * (1 - dynamic.energy_j / npf.energy_j)
    print(
        f"\nstatic prefetching decays to {static.buffer_hit_rate:.0%} hits "
        f"({savings_static:.1f} % savings); dynamic tracking holds "
        f"{dynamic.buffer_hit_rate:.0%} ({savings_dynamic:.1f} %) at the cost of "
        f"{dynamic.prefetch_files_copied - static.prefetch_files_copied} extra "
        "buffer copies"
    )


if __name__ == "__main__":
    main()
