#!/usr/bin/env python3
"""Scenario: a web-content cluster (the paper's §VI-D / Fig. 6 case).

Search engines and multimedia websites (the intro's motivating
workloads) have heavily skewed file popularity.  This example builds the
Berkeley-web-like trace, inspects its skew, runs EEVFS, and breaks the
result down per storage node -- showing the "data disks asleep for the
entire trace" regime the paper reports.

Run:  python examples/web_server_workload.py
"""

import numpy as np

from repro import EEVFSConfig
from repro.core.filesystem import EEVFSCluster
from repro.disk.states import DiskState
from repro.metrics import compare, format_table
from repro.traces import generate_berkeley_like_trace
from repro.traces.berkeley import BerkeleyWebWorkload
from repro.traces.stats import coverage_of_top_k, gini_coefficient, working_set_size


def main() -> None:
    workload = BerkeleyWebWorkload(n_requests=1000)
    trace = generate_berkeley_like_trace(workload, rng=np.random.default_rng(2))

    print("--- workload skew (what makes web traces prefetch-friendly) ---")
    print(f"working set        {working_set_size(trace)} of {trace.n_files} files")
    print(f"gini coefficient   {gini_coefficient(trace):.3f}")
    print(f"top-70 coverage    {coverage_of_top_k(trace, 70):.0%} of requests")

    cluster = EEVFSCluster(config=EEVFSConfig(prefetch_files=70))
    pf = cluster.run(trace)
    npf = EEVFSCluster(config=EEVFSConfig(prefetch_files=70).as_npf()).run(trace)
    comparison = compare(pf, npf)

    print("\n--- headline (the paper's Fig. 6) ---")
    print(f"PF energy   {pf.energy_j / 1e5:.2f}e5 J")
    print(f"NPF energy  {npf.energy_j / 1e5:.2f}e5 J")
    print(f"savings     {comparison.energy_savings_pct:.1f} %  (paper: 17 %)")
    print(f"hit rate    {pf.buffer_hit_rate:.0%}")

    print("\n--- per-node breakdown ---")
    rows = []
    for report, node in zip(pf.nodes, cluster.nodes):
        asleep = sum(
            1 for d in node.data_disks if d.state is DiskState.STANDBY
        )
        rows.append(
            [
                report.name,
                report.total_energy_j,
                report.buffer_hits,
                report.data_disk_hits,
                f"{asleep}/{len(node.data_disks)}",
            ]
        )
    print(
        format_table(
            ["node", "energy_J", "buffer_hits", "data_hits", "disks_asleep_at_end"],
            rows,
        )
    )

    p99 = pf.response_times.percentile(99)
    print(f"\nresponse: mean {pf.mean_response_s:.3f} s, p99 {p99:.3f} s")


if __name__ == "__main__":
    main()
