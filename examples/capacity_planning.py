#!/usr/bin/env python3
"""Scenario: capacity planning -- where does EEVFS pay off?

§VII conjectures that savings "will increase as more disks are added to
each EEVFS storage node" (the authors could not test it on their
hardware; we can).  This example sweeps data disks per node and prefetch
depth K, mapping the savings / response-penalty frontier an operator
would use to size a deployment.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import EEVFSConfig, default_cluster
from repro.experiments.runner import run_pair
from repro.metrics import format_table
from repro.traces import generate_synthetic_trace
from repro.traces.synthetic import SyntheticWorkload


def main() -> None:
    trace = generate_synthetic_trace(
        SyntheticWorkload(n_requests=600), rng=np.random.default_rng(1)
    )

    print("--- §VII conjecture: savings vs data disks per node ---")
    rows = []
    for disks in (1, 2, 4, 8):
        cluster = default_cluster(data_disks_per_node=disks)
        comparison = run_pair(trace, config=EEVFSConfig(), cluster=cluster)
        rows.append(
            [
                disks,
                comparison.energy_savings_pct,
                comparison.pf.transitions,
                comparison.response_penalty_pct,
            ]
        )
    print(
        format_table(
            ["disks/node", "savings_pct", "transitions", "penalty_pct"], rows
        )
    )

    print("\n--- prefetch depth K: savings vs buffer investment ---")
    rows = []
    for k in (10, 40, 70, 100, 150):
        comparison = run_pair(trace, config=EEVFSConfig(prefetch_files=k))
        rows.append(
            [
                k,
                comparison.pf.prefetch_bytes_copied / 2**20,
                comparison.energy_savings_pct,
                comparison.response_penalty_pct,
                comparison.savings_per_transition_j,
            ]
        )
    print(
        format_table(
            [
                "K",
                "copied_MiB",
                "savings_pct",
                "penalty_pct",
                "J_saved_per_transition",
            ],
            rows,
        )
    )
    print(
        "\nNote the J-saved-per-transition column: §VI-B's wear argument --"
        "\nsmall K buys little energy at a high spin-up cost per joule."
    )


if __name__ == "__main__":
    main()
