#!/usr/bin/env python3
"""Quickstart: run EEVFS with and without prefetching on one workload.

Builds the paper's 8-node testbed, generates the default Table-II
synthetic workload (1000 files, 10 MB, MU=1000, 700 ms inter-arrival),
and reports the three §V-C metrics for PF vs NPF.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import EEVFSConfig, run_eevfs
from repro.metrics import compare
from repro.traces import generate_synthetic_trace
from repro.traces.synthetic import SyntheticWorkload


def main() -> None:
    # 1. A reproducible workload (the paper's defaults).
    workload = SyntheticWorkload(n_requests=1000)
    trace = generate_synthetic_trace(workload, rng=np.random.default_rng(1))
    print(
        f"workload: {trace.n_requests} requests over {trace.n_files} files, "
        f"{trace.duration_s:.0f} s trace"
    )

    # 2. Same trace, two policies.
    pf = run_eevfs(trace, EEVFSConfig(prefetch_enabled=True))
    npf = run_eevfs(trace, EEVFSConfig(prefetch_enabled=False))
    comparison = compare(pf, npf)

    # 3. The paper's three metrics.
    print(f"\nenergy   PF  {pf.energy_j / 1e5:.2f}e5 J")
    print(f"energy   NPF {npf.energy_j / 1e5:.2f}e5 J")
    print(f"savings      {comparison.energy_savings_pct:.1f} %")
    print(f"\ntransitions  PF {pf.transitions}, NPF {npf.transitions}")
    print(
        f"response     PF {pf.mean_response_s:.3f} s, NPF {npf.mean_response_s:.3f} s "
        f"(+{comparison.response_penalty_pct:.1f} %)"
    )
    print(f"buffer hits  {pf.buffer_hit_rate:.0%} of reads")
    print(
        f"\nprefetch     {pf.prefetch_files_copied} files "
        f"({pf.prefetch_bytes_copied / 2**20:.0f} MiB) copied to buffer disks"
    )


if __name__ == "__main__":
    main()
