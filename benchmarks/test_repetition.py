"""Statistical backing for the headline claim: multi-seed repetition.

The paper's 11-17 % savings figures are single measurements; here the
default operating point repeats across five seeds (workload + jitter
both redrawn) and the claim is asserted on the confidence interval, not
one draw.
"""

from conftest import N_REQUESTS

from repro.experiments.repetition import repeat_pair
from repro.traces.synthetic import SyntheticWorkload


def test_headline_savings_with_confidence(benchmark):
    result = benchmark.pedantic(
        lambda: repeat_pair(
            workload=SyntheticWorkload(n_requests=min(N_REQUESTS, 600)),
            seeds=(0, 1, 2, 3, 4),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    savings = result.savings_pct
    # The paper's band, now with error bars: the whole 95 % CI must sit
    # inside 5-20 %, and the estimate must be tight (not seed-luck).
    lo, hi = savings.ci95
    assert 5.0 < lo and hi < 20.0
    assert savings.ci95_halfwidth < 3.0
    # Response penalty stays "tolerable" (§VI-C) across seeds.
    assert result.penalty_pct.mean < 40.0
