"""Ablation benches: the design choices DESIGN.md calls out.

A1 idle threshold; A2 application hints; A3 disks per node (the §VII
conjecture); A4 window predictor; A5 client replay discipline.
"""

from conftest import N_REQUESTS

from repro.experiments.ablations import (
    ablate_disks_per_node,
    ablate_diurnal,
    ablate_dynamic_prefetch,
    ablate_hints,
    ablate_idle_threshold,
    ablate_node_scaling,
    ablate_placement_policy,
    ablate_replay_mode,
    ablate_striping,
    ablate_window_predictor,
)
from repro.metrics.report import format_table


def test_idle_threshold(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_idle_threshold(n_requests=N_REQUESTS), rounds=1, iterations=1
    )
    print()
    print(result.render())
    savings = [c.energy_savings_pct for c in result.comparisons]
    # Sleeping pays at every threshold tried; very large thresholds
    # forgo savings relative to the paper's 5 s operating point.
    paper_point = result.x_values.index(5.0)
    assert all(s > 0 for s in savings)
    assert savings[-1] <= savings[paper_point] + 0.5


def test_application_hints(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_hints(n_requests=N_REQUESTS), rounds=1, iterations=1
    )
    print()
    print(result.render())
    with_hints, without = result.comparisons
    # §IV-C: EEVFS works without hints, but hints buy response time --
    # predictive wake-ups beat raw idle timers by a wide margin.
    assert without.energy_savings_pct > 0
    assert with_hints.response_penalty_pct < without.response_penalty_pct / 2
    # Energy is a near wash: timers sleep 5 s later per window but never
    # wake early; hints sleep sooner but pre-spin disks.  Both land in
    # the same savings band (measured: ~11 +/- 1.5 points).
    assert abs(with_hints.energy_savings_pct - without.energy_savings_pct) < 3.0


def test_disks_per_node(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_disks_per_node(n_requests=N_REQUESTS), rounds=1, iterations=1
    )
    print()
    print(result.render())
    savings = [c.energy_savings_pct for c in result.comparisons]
    # §VII: "We believe this number will increase as more disks are added
    # to each EEVFS storage node."  Confirmed: monotone in disk count.
    assert savings == sorted(savings)
    assert savings[-1] > savings[0] * 1.5


def test_striping(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_striping(n_requests=N_REQUESTS), rounds=1, iterations=1
    )
    print()
    print(result.render())
    savings = [c.energy_savings_pct for c in result.comparisons]
    npf_response = [c.npf.mean_response_s for c in result.comparisons]
    # §VII's hoped-for performance gain is real (NPF responses fall with
    # width) ...
    assert npf_response == sorted(npf_response, reverse=True)
    # ... but "while still maintaining energy savings" only partially
    # holds: savings shrink with width (every miss wakes all stripes).
    assert savings == sorted(savings, reverse=True)
    assert savings[-1] > 0  # still saves at width 4


def test_window_predictor(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_window_predictor(n_requests=N_REQUESTS), rounds=1, iterations=1
    )
    print()
    print(result.render())
    sequence, time_based = result.comparisons
    # Both predictors save energy at the default (unsaturated) point.
    assert sequence.energy_savings_pct > 5.0
    assert time_based.energy_savings_pct > 5.0


def test_placement_policy(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_placement_policy(n_requests=N_REQUESTS), rounds=1, iterations=1
    )
    print()
    print(result.render())
    round_robin, weighted = result.comparisons
    # Bandwidth-weighted placement must cut response times on the
    # heterogeneous testbed without giving up energy savings.
    assert weighted.pf.mean_response_s < 0.8 * round_robin.pf.mean_response_s
    assert weighted.energy_savings_pct > round_robin.energy_savings_pct - 1.0


def test_node_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_node_scaling(
            node_counts=(2, 4, 8, 16), n_requests=N_REQUESTS
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    savings = [c.energy_savings_pct for c in result.comparisons]
    responses = [c.pf.mean_response_s for c in result.comparisons]
    # §III-A scalability: at constant per-node load, savings and response
    # stay flat as the cluster grows (the thin server never bottlenecks).
    assert max(savings) - min(savings) < 4.0
    assert max(responses) < 2.0 * min(responses)


def test_diurnal_arrivals(benchmark):
    result = benchmark.pedantic(
        lambda: ablate_diurnal(n_requests=N_REQUESTS), rounds=1, iterations=1
    )
    print()
    print(result.render())
    diurnal, constant = result.comparisons
    # Matched volume: the look-ahead policy is burstiness-insensitive on
    # energy (within ~2 points) ...
    assert abs(diurnal.energy_savings_pct - constant.energy_savings_pct) < 2.0
    assert diurnal.energy_savings_pct > 5.0
    # ... and bursts cost at most a modest response-time premium.
    assert diurnal.pf.mean_response_s < 1.5 * constant.pf.mean_response_s


def test_dynamic_prefetch_under_drift(benchmark):
    out = benchmark.pedantic(
        lambda: ablate_dynamic_prefetch(n_requests=N_REQUESTS), rounds=1, iterations=1
    )
    rows = [
        [name, r.energy_j, r.buffer_hit_rate, r.mean_response_s, r.prefetch_files_copied]
        for name, r in out.items()
    ]
    print()
    print(
        format_table(
            ["policy", "energy_J", "hit_rate", "response_s", "files_copied"],
            rows,
            title="Ablation: dynamic re-prefetching on a drifting workload",
        )
    )
    npf, static, dynamic = out["npf"], out["static"], out["dynamic"]
    # Static prefetching decays as the hot set drifts away from the
    # history it was planned on; dynamic tracking recovers the hit rate.
    assert dynamic.buffer_hit_rate > 1.5 * static.buffer_hit_rate
    # Both still beat NPF on energy.
    assert static.energy_j < npf.energy_j
    assert dynamic.energy_j < npf.energy_j


def test_power_model_sensitivity(benchmark):
    """The reproduction's conclusions must not hinge on the calibration
    DESIGN.md chose for the unpublished power figures."""
    from repro.experiments.sensitivity import (
        power_model_sensitivity,
        render_sensitivity,
    )

    grid = benchmark.pedantic(
        lambda: power_model_sensitivity(n_requests=min(N_REQUESTS, 500)),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sensitivity(grid))
    # PF wins everywhere on the +/-50 % base, +/-30 % disk grid, and the
    # band stays in single-digit-to-twenties territory.
    assert all(3.0 < value < 30.0 for value in grid.values())
    # The nominal calibration sits inside the paper's 11-17 % band.
    assert 9.0 <= grid[(1.0, 1.0)] <= 17.0


def test_replay_modes(benchmark):
    out = benchmark.pedantic(
        lambda: ablate_replay_mode(n_requests=min(N_REQUESTS, 500)),
        rounds=1,
        iterations=1,
    )
    rows = [
        [mode, c.energy_savings_pct, c.pf.transitions, c.response_penalty_pct]
        for mode, c in out.items()
    ]
    print()
    print(
        format_table(
            ["replay_mode", "savings_pct", "PF_transitions", "penalty_pct"],
            rows,
            title="Ablation: client replay discipline",
        )
    )
    # Prefetching saves energy under every replay discipline.
    for comparison in out.values():
        assert comparison.energy_savings_pct > 0
