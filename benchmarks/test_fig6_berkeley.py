"""Fig. 6 regeneration: energy on the Berkeley-web-like trace.

Paper result: 17 % savings -- "near the maximum that we expect our
current test bed to produce" -- with every data disk in standby for the
entire trace.  Our stand-in trace (see DESIGN.md substitution table)
reproduces the regime: 100 % buffer hit rate, one spin-down per data
disk, savings at our testbed's own maximum.
"""

from conftest import N_REQUESTS

from repro.experiments.figures import figure6
from repro.experiments.sweeps import run_sweep


def test_fig6_berkeley_web_trace(benchmark):
    fig6 = benchmark.pedantic(
        lambda: figure6(n_requests=N_REQUESTS), rounds=1, iterations=1
    )
    print()
    print(fig6.render())

    comparison = fig6.comparison
    # The all-hit regime: every request served from buffer disks.
    assert comparison.pf.buffer_hit_rate == 1.0
    # One spin-down per data disk, never woken again (16 data disks).
    assert comparison.pf.transitions == 16
    # Savings at the testbed maximum (the MU<=100 saturated level), in
    # the paper's 17 % ballpark.
    assert 10.0 <= fig6.savings_pct <= 20.0
    # Virtually no response penalty (§VI-C: penalties come from
    # transitions, and there are none during the trace).
    assert abs(comparison.response_penalty_pct) < 2.0


def test_fig6_savings_match_saturated_mu_regime(benchmark):
    """The paper observes its web-trace savings equal the best the
    testbed can do; cross-check against the MU=1 saturated point."""
    points = benchmark.pedantic(
        lambda: run_sweep("mu", values=[1], n_requests=min(N_REQUESTS, 400)),
        rounds=1,
        iterations=1,
    )
    saturated = points[0].comparison.energy_savings_pct
    fig6 = figure6(n_requests=min(N_REQUESTS, 400))
    assert abs(fig6.savings_pct - saturated) < 1.5
