"""Fig. 5 regeneration: file-request response time, PF vs NPF.

Shape claims reproduced: the PF penalty is largest for small files and
small K, vanishes in the all-hit regimes, and PF tracks NPF roughly
linearly ("a tolerable response time penalty", §VI-C).
"""

from conftest import series, sweep_cached

from repro.metrics.report import format_series


def _print_panel(letter, x_label, points):
    print()
    print(
        format_series(
            x_label,
            [p.value for p in points],
            {
                "PF_response_s": series(points, lambda c: c.pf.mean_response_s),
                "NPF_response_s": series(points, lambda c: c.npf.mean_response_s),
                "penalty_pct": series(points, lambda c: c.response_penalty_pct),
            },
            title=f"Fig5({letter})",
        )
    )


def test_fig5a_data_size(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cached("data_size"), rounds=1, iterations=1
    )
    _print_panel("a", "Data Size (MB)", points)
    penalties = series(points, lambda c: c.response_penalty_pct)
    # Paper: 121 % penalty at 1 MB shrinking to ~4 % at 25 MB -- the
    # absolute spin-up cost amortises over larger transfers.
    assert penalties[0] == max(penalties[:3])
    assert penalties[2] < penalties[0] / 3
    # PF response >= NPF response at every size (penalty, never a gain).
    for point in points:
        assert point.pf.mean_response_s >= point.npf.mean_response_s * 0.99


def test_fig5b_mu(benchmark):
    points = benchmark.pedantic(lambda: sweep_cached("mu"), rounds=1, iterations=1)
    _print_panel("b", "MU", points)
    penalties = series(points, lambda c: c.response_penalty_pct)
    # Paper: "When the disks are able to stay in the standby state the
    # entire time there is virtually no response time penalty."
    for value in penalties[:3]:
        assert abs(value) < 2.0
    assert penalties[3] > max(penalties[:3])


def test_fig5c_interarrival(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cached("inter_arrival"), rounds=1, iterations=1
    )
    _print_panel("c", "Inter-arrival delay (ms)", points)
    penalties = series(points, lambda c: c.response_penalty_pct)
    # Paper: heaviest load (0 ms) has the largest penalty; the lightest
    # (1000 ms) the smallest of the loaded points.
    assert penalties[0] == max(penalties)
    assert penalties[3] <= penalties[0]


def test_fig5d_prefetch_count(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cached("prefetch_count"), rounds=1, iterations=1
    )
    _print_panel("d", "# of files to prefetch", points)
    penalties = series(points, lambda c: c.response_penalty_pct)
    # Penalty falls monotonically with K (fewer misses to sleeping disks),
    # mirroring the transition counts of Fig. 4d.
    assert penalties == sorted(penalties, reverse=True)
    transitions = series(points, lambda c: c.pf.transitions)
    assert transitions == sorted(transitions, reverse=True)
