"""Tracked performance benchmark: writes ``BENCH_perf.json``.

Runs the seven perf families (engine throughput, continuation dispatch,
single-run and online-run wall clock, mean-field backend, SSD-buffer
run, and serial-vs-parallel speedup) at benchmark scale and persists the JSON
report at the repository root so successive commits can diff it.  The
assertions here are about *validity* (schema complete, parallel results
identical to serial), never about absolute speed -- machines differ.
The absolute-speed regression gate lives in CI against the checked-in
floor (``benchmarks/perf_floor.json``), where the comparison is
same-machine across commits and therefore meaningful.
"""

import json
import os
from pathlib import Path

from repro.experiments.perf import (
    check_floor,
    DEFAULT_PATH,
    HISTORY_LIMIT,
    load_history,
    run_perf_benchmark,
    SCHEMA,
    validate_report,
)

#: Scale knob shared with the other benchmarks (default: paper scale).
N_REQUESTS = int(os.environ.get("EEVFS_BENCH_REQUESTS", "1000"))


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def test_perf_benchmark_writes_valid_report():
    out = _repo_root() / DEFAULT_PATH
    report = run_perf_benchmark(n_requests=N_REQUESTS, out_path=out)

    assert validate_report(report) == []
    assert report["schema"] == SCHEMA
    assert report["engine"]["events"] > 0
    assert report["engine"]["events_per_s"] > 0
    assert report["dispatch"]["events_per_s"] > 0
    assert report["single_run"]["runs_per_s"] > 0
    assert report["online_run"]["runs_per_s"] > 0
    assert report["meanfield_run"]["n_points"] > 0
    assert report["meanfield_run"]["speedup_vs_discrete"] > 0
    assert report["ssd_run"]["runs_per_s"] > 0
    assert report["ssd_run"]["write_amplification"] > 0
    assert report["parallel"]["identical_metrics"] is True
    assert report["parallel"]["jobs_effective"] >= 1

    on_disk = json.loads(out.read_text())
    assert validate_report(on_disk) == []
    assert on_disk == json.loads(json.dumps(report))  # JSON round-trips

    # History accumulates across invocations instead of being overwritten.
    assert isinstance(report["history"], list)
    assert 1 <= len(report["history"]) <= HISTORY_LIMIT
    latest = report["history"][-1]
    assert latest["engine_events_per_s"] == report["engine"]["events_per_s"]
    assert latest["single_run_wall_s"] == report["single_run"]["wall_s"]
    assert load_history(out) == report["history"]


def test_history_migrates_v1_and_appends(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    v1 = {
        "schema": "eevfs-bench-perf/1",
        "cpu_count": 4,
        "engine": {"events": 10, "wall_s": 1.0, "events_per_s": 10.0},
        "single_run": {"n_requests": 5, "wall_s": 0.5, "runs_per_s": 2.0},
        "parallel": {"jobs": 2, "serial_s": 1.0, "parallel_s": 0.6,
                     "speedup": 1.67, "identical_metrics": True},
    }
    out.write_text(json.dumps(v1))

    first = run_perf_benchmark(n_requests=40, out_path=out)
    assert len(first["history"]) == 2  # migrated v1 entry + this run
    assert first["history"][0]["engine_events_per_s"] == 10.0

    second = run_perf_benchmark(n_requests=40, out_path=out)
    assert len(second["history"]) == 3
    assert second["history"][:2] == first["history"][:2]


def test_history_carries_v2_forward(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    v2_entry = {"ts": 1.0, "engine_events_per_s": 9.0, "parallel_speedup": 1.5}
    out.write_text(
        json.dumps({"schema": "eevfs-bench-perf/2", "history": [v2_entry]})
    )

    report = run_perf_benchmark(n_requests=40, out_path=out)
    assert report["history"][0] == v2_entry  # v2 rows survive untouched
    assert report["history"][-1]["online_run_wall_s"] > 0


def test_history_carries_v3_forward(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    v3_entry = {
        "ts": 2.0,
        "engine_events_per_s": 11.0,
        "online_run_wall_s": 0.2,
        "parallel_jobs": 1,
        "parallel_speedup": 1.03,
    }
    out.write_text(
        json.dumps({"schema": "eevfs-bench-perf/3", "history": [v3_entry]})
    )

    report = run_perf_benchmark(n_requests=40, out_path=out)
    assert report["history"][0] == v3_entry  # v3 rows survive untouched
    latest = report["history"][-1]
    assert latest["dispatch_events_per_s"] > 0
    assert latest["meanfield_points_per_s"] > 0
    assert latest["parallel_pool_available"] in (True, False)


def test_history_carries_v4_forward(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    v4_entry = {
        "ts": 3.0,
        "engine_events_per_s": 12.0,
        "dispatch_events_per_s": 40.0,
        "meanfield_points_per_s": 5.0,
        "parallel_pool_available": True,
        "parallel_speedup": 1.1,
    }
    out.write_text(
        json.dumps({"schema": "eevfs-bench-perf/4", "history": [v4_entry]})
    )

    report = run_perf_benchmark(n_requests=40, out_path=out)
    assert report["history"][0] == v4_entry  # v4 rows survive untouched
    latest = report["history"][-1]
    assert latest["ssd_run_wall_s"] > 0
    assert latest["ssd_run_runs_per_s"] > 0


def test_check_floor_flags_regressions_and_missing_keys():
    floor = {
        "floors": {
            "engine.events_per_s": 100,
            "dispatch.events_per_s": 100,
            "meanfield_run.speedup_vs_discrete": 10,
        }
    }
    healthy = {
        "engine": {"events_per_s": 500.0},
        "dispatch": {"events_per_s": 900.0},
        "meanfield_run": {"speedup_vs_discrete": 50.0},
    }
    assert check_floor(healthy, floor) == []

    regressed = {
        "engine": {"events_per_s": 5.0},  # below floor
        "dispatch": {},  # key missing entirely
        "meanfield_run": {"speedup_vs_discrete": 50.0},
    }
    problems = check_floor(regressed, floor)
    assert any("engine.events_per_s" in p and "below floor" in p for p in problems)
    assert any("dispatch.events_per_s missing" in p for p in problems)


def test_checked_in_floor_passes_on_this_host():
    floor = json.loads((_repo_root() / "benchmarks" / "perf_floor.json").read_text())
    report = run_perf_benchmark(n_requests=60, out_path=None)
    assert check_floor(report, floor) == []
