"""Tracked performance benchmark: writes ``BENCH_perf.json``.

Runs the three perf families (engine throughput, single-run wall clock,
serial-vs-parallel speedup) at benchmark scale and persists the JSON
report at the repository root so successive commits can diff it.  The
assertions here are about *validity* (schema complete, parallel results
identical to serial), never about absolute speed -- machines differ.
"""

import json
import os
from pathlib import Path

from repro.experiments.perf import (
    DEFAULT_PATH,
    HISTORY_LIMIT,
    load_history,
    run_perf_benchmark,
    SCHEMA,
    validate_report,
)

#: Scale knob shared with the other benchmarks (default: paper scale).
N_REQUESTS = int(os.environ.get("EEVFS_BENCH_REQUESTS", "1000"))


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def test_perf_benchmark_writes_valid_report():
    out = _repo_root() / DEFAULT_PATH
    report = run_perf_benchmark(n_requests=N_REQUESTS, out_path=out)

    assert validate_report(report) == []
    assert report["schema"] == SCHEMA
    assert report["engine"]["events"] > 0
    assert report["engine"]["events_per_s"] > 0
    assert report["single_run"]["runs_per_s"] > 0
    assert report["online_run"]["runs_per_s"] > 0
    assert report["parallel"]["identical_metrics"] is True

    on_disk = json.loads(out.read_text())
    assert validate_report(on_disk) == []
    assert on_disk == json.loads(json.dumps(report))  # JSON round-trips

    # History accumulates across invocations instead of being overwritten.
    assert isinstance(report["history"], list)
    assert 1 <= len(report["history"]) <= HISTORY_LIMIT
    latest = report["history"][-1]
    assert latest["engine_events_per_s"] == report["engine"]["events_per_s"]
    assert latest["single_run_wall_s"] == report["single_run"]["wall_s"]
    assert load_history(out) == report["history"]


def test_history_migrates_v1_and_appends(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    v1 = {
        "schema": "eevfs-bench-perf/1",
        "cpu_count": 4,
        "engine": {"events": 10, "wall_s": 1.0, "events_per_s": 10.0},
        "single_run": {"n_requests": 5, "wall_s": 0.5, "runs_per_s": 2.0},
        "parallel": {"jobs": 2, "serial_s": 1.0, "parallel_s": 0.6,
                     "speedup": 1.67, "identical_metrics": True},
    }
    out.write_text(json.dumps(v1))

    first = run_perf_benchmark(n_requests=40, out_path=out)
    assert len(first["history"]) == 2  # migrated v1 entry + this run
    assert first["history"][0]["engine_events_per_s"] == 10.0

    second = run_perf_benchmark(n_requests=40, out_path=out)
    assert len(second["history"]) == 3
    assert second["history"][:2] == first["history"][:2]


def test_history_carries_v2_forward(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    v2_entry = {"ts": 1.0, "engine_events_per_s": 9.0, "parallel_speedup": 1.5}
    out.write_text(
        json.dumps({"schema": "eevfs-bench-perf/2", "history": [v2_entry]})
    )

    report = run_perf_benchmark(n_requests=40, out_path=out)
    assert report["history"][0] == v2_entry  # v2 rows survive untouched
    assert report["history"][-1]["online_run_wall_s"] > 0
