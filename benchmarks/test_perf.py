"""Tracked performance benchmark: writes ``BENCH_perf.json``.

Runs the three perf families (engine throughput, single-run wall clock,
serial-vs-parallel speedup) at benchmark scale and persists the JSON
report at the repository root so successive commits can diff it.  The
assertions here are about *validity* (schema complete, parallel results
identical to serial), never about absolute speed -- machines differ.
"""

import json
import os
from pathlib import Path

from repro.experiments.perf import (
    DEFAULT_PATH,
    run_perf_benchmark,
    SCHEMA,
    validate_report,
)

#: Scale knob shared with the other benchmarks (default: paper scale).
N_REQUESTS = int(os.environ.get("EEVFS_BENCH_REQUESTS", "1000"))


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def test_perf_benchmark_writes_valid_report():
    out = _repo_root() / DEFAULT_PATH
    report = run_perf_benchmark(n_requests=N_REQUESTS, out_path=out)

    assert validate_report(report) == []
    assert report["schema"] == SCHEMA
    assert report["engine"]["events"] > 0
    assert report["engine"]["events_per_s"] > 0
    assert report["single_run"]["runs_per_s"] > 0
    assert report["parallel"]["identical_metrics"] is True

    on_disk = json.loads(out.read_text())
    assert validate_report(on_disk) == []
    assert on_disk == json.loads(json.dumps(report))  # JSON round-trips
