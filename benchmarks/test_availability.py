"""Extension E2: availability vs energy under failures.

The fault/replication subsystems' headline claim: with 2-way replication
a whole-node failure costs almost no availability (>= 99% of requests
still succeed) and bounded energy (< 15% over the same degraded run
without replication) -- the buffer-disk architecture absorbs most of the
repair traffic, so durability does not have to fight the energy budget.

Also asserts the determinism contract: one seed => one fault log,
event for event.
"""

from conftest import N_REQUESTS
import numpy as np

from repro.core import EEVFSConfig
from repro.core.filesystem import EEVFSCluster, run_eevfs
from repro.faults import FaultSchedule
from repro.metrics.report import summary_table
from repro.traces.synthetic import generate_synthetic_trace, SyntheticWorkload


def _trace():
    return generate_synthetic_trace(
        SyntheticWorkload(n_requests=N_REQUESTS), rng=np.random.default_rng(1)
    )


def _node_crash(trace):
    """One whole storage node dies ~30% into the workload, no repair."""
    return FaultSchedule().node_fail("node3", at=0.3 * trace.duration_s)


def test_availability_vs_energy(benchmark):
    trace = _trace()

    def run_pair():
        plain = run_eevfs(trace, EEVFSConfig(), faults=_node_crash(trace))
        replicated = run_eevfs(
            trace,
            EEVFSConfig(replication_factor=2),
            faults=_node_crash(trace),
        )
        return plain, replicated

    plain, replicated = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    print()
    print(
        summary_table(
            {"no replication": plain, "2-way replication": replicated},
            title="Whole-node failure, same workload (availability vs energy)",
        )
    )
    print(
        f"\nfailovers {replicated.requests_failed_over}, "
        f"repairs {replicated.repairs_completed} "
        f"({replicated.repair_bytes_copied / 1e6:.0f} MB recopied), "
        f"under-replicated at end {replicated.under_replicated_files}"
    )

    # The ISSUE's two bounds.
    assert replicated.availability >= 0.99
    overhead = (replicated.energy_j - plain.energy_j) / plain.energy_j
    assert overhead < 0.15

    # And the parts that make them meaningful: the failure really bit the
    # unprotected run, and background repair made real progress.  (Full
    # factor restoration within the window depends on trace length vs the
    # rereplication throttle; tests/replication covers it exactly.)
    assert plain.availability < 1.0
    assert replicated.repairs_completed > 0
    assert replicated.repair_bytes_copied > 0


def test_fault_logs_are_deterministic(benchmark):
    trace = _trace()

    def run_once(seed):
        schedule = (
            FaultSchedule()
            .node_fail("node3", at=0.3 * trace.duration_s)
            .exponential_faults(
                ["node1/data0", "node5/data1"],
                mtbf_s=trace.duration_s / 3.0,
                horizon_s=trace.duration_s,
                mttr_s=60.0,
            )
        )
        cluster = EEVFSCluster(
            config=EEVFSConfig(replication_factor=2), seed=seed, faults=schedule
        )
        result = cluster.run(trace)
        assert result.fault_log is not None
        return result.fault_log

    def run_three():
        return run_once(0), run_once(0), run_once(1)

    first, second, other_seed = benchmark.pedantic(run_three, rounds=1, iterations=1)
    assert first == second  # same seed => identical event sequence
    assert list(first.records) == list(second.records)
    assert other_seed != first  # the stochastic part really is seeded
