"""Fig. 3 regeneration: energy consumption, PF vs NPF, four panels.

Each benchmark runs (or fetches) one Table-II sweep, prints the series
the paper plots, and asserts the paper's *shape* claims for that panel
(who wins, where the curve bends).  Absolute joules differ from the
testbed; see EXPERIMENTS.md for the side-by-side.
"""

from conftest import series, sweep_cached

from repro.metrics.report import format_series


def _print_panel(letter, x_label, points):
    print()
    print(
        format_series(
            x_label,
            [p.value for p in points],
            {
                "PF_energy_J": series(points, lambda c: c.pf.energy_j),
                "NPF_energy_J": series(points, lambda c: c.npf.energy_j),
                "savings_pct": series(points, lambda c: c.energy_savings_pct),
            },
            title=f"Fig3({letter})",
        )
    )


def test_fig3a_data_size(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cached("data_size"), rounds=1, iterations=1
    )
    _print_panel("a", "Data Size (MB)", points)
    savings = series(points, lambda c: c.energy_savings_pct)
    # Paper: 11 % at 1 MB rising to 15 % at 50 MB; PF wins everywhere.
    assert all(s > 5.0 for s in savings)
    assert 8.0 <= savings[0] <= 16.0
    # Paper: the 50 MB test saturates -- absolute energy jumps for BOTH
    # modes because the run outlasts the trace.
    pf_energy = series(points, lambda c: c.pf.energy_j)
    assert pf_energy[3] > 1.3 * pf_energy[1]
    durations = series(points, lambda c: c.pf.duration_s)
    assert durations[3] > 1.2 * durations[1]


def test_fig3b_mu(benchmark):
    points = benchmark.pedantic(lambda: sweep_cached("mu"), rounds=1, iterations=1)
    _print_panel("b", "MU", points)
    savings = series(points, lambda c: c.energy_savings_pct)
    # Paper: larger MU -> smaller gain; MU <= 100 all produce the same
    # (saturated) savings because every request is prefetched.
    assert savings[3] == min(savings)
    assert max(savings[:3]) - min(savings[:3]) < 1.0
    hit_rates = series(points, lambda c: c.pf.buffer_hit_rate)
    assert all(h == 1.0 for h in hit_rates[:3])


def test_fig3c_interarrival(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cached("inter_arrival"), rounds=1, iterations=1
    )
    _print_panel("c", "Inter-arrival delay (ms)", points)
    savings = series(points, lambda c: c.energy_savings_pct)
    # Paper: gains grow with inter-arrival delay and level off by 700 ms.
    assert savings[1] < savings[2] + 1.0
    assert savings[3] >= savings[1]
    # IA=0 is the worst point for prefetching (heaviest load).
    assert savings[0] == min(savings)


def test_fig3d_prefetch_count(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cached("prefetch_count"), rounds=1, iterations=1
    )
    _print_panel("d", "# of files to prefetch", points)
    savings = series(points, lambda c: c.energy_savings_pct)
    # Paper: monotone growth; K=10 (1 % of files) saves only ~3 %.
    assert savings == sorted(savings)
    assert savings[0] < 8.0
    assert savings[3] > 10.0
