"""Extension E1: baseline shoot-out (EEVFS vs MAID vs PDC vs always-on).

Quantifies the §II related-work arguments on identical hardware and
workload: reactive LRU caching (MAID) pays response time for its energy;
layout concentration (PDC) skews load; caching without sleeping saves
nothing.
"""

from conftest import N_REQUESTS
import numpy as np

from repro.baselines import run_alwayson, run_drpm, run_maid, run_npf, run_pdc
from repro.core import EEVFSConfig, run_eevfs
from repro.metrics.report import format_table
from repro.traces.synthetic import generate_synthetic_trace, MB, SyntheticWorkload


def _trace():
    return generate_synthetic_trace(
        SyntheticWorkload(n_requests=N_REQUESTS), rng=np.random.default_rng(1)
    )


def test_baseline_shootout(benchmark):
    trace = _trace()

    def run_all():
        return {
            "EEVFS-PF": run_eevfs(trace, EEVFSConfig()),
            "EEVFS-NPF": run_npf(trace),
            "Always-on": run_alwayson(trace),
            "MAID": run_maid(trace, cache_bytes=700 * MB),
            "PDC": run_pdc(trace),
            "DRPM": run_drpm(trace),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            name,
            r.energy_j,
            r.transitions,
            r.mean_response_s,
            r.buffer_hit_rate,
        ]
        for name, r in results.items()
    ]
    print()
    print(
        format_table(
            ["system", "energy_J", "transitions", "mean_response_s", "hit_rate"],
            rows,
            title="Baseline shoot-out (Table-II defaults)",
        )
    )

    npf = results["EEVFS-NPF"]
    pf = results["EEVFS-PF"]
    # Caching without sleeping saves nothing (within noise).
    assert abs(results["Always-on"].energy_j - npf.energy_j) / npf.energy_j < 0.02
    # EEVFS saves energy vs every non-sleeping mode.
    assert pf.energy_j < npf.energy_j
    assert pf.energy_j < results["Always-on"].energy_j
    # MAID saves energy too (on this *stationary* workload its LRU cache
    # converges to the popular set) but pays clearly more response time
    # than EEVFS: reactive wake-ups, no look-ahead -- §II's criticism.
    assert results["MAID"].energy_j < npf.energy_j
    assert results["MAID"].mean_response_s > 1.15 * pf.mean_response_s
    # MAID can never serve a file's *first* access from cache; EEVFS can.
    distinct = len(_trace().accessed_file_ids())
    assert results["MAID"].data_disk_hits >= distinct
    # PDC sleeps cold disks without any buffer copies.
    assert results["PDC"].energy_j < npf.energy_j
    assert results["PDC"].prefetch_files_copied == 0
    # DRPM saves without any standby cycles, but less deeply than EEVFS.
    assert results["DRPM"].transitions == 0
    assert pf.energy_j < results["DRPM"].energy_j < npf.energy_j


def test_lowpower_hardware_tradeoff(benchmark):
    """§II's alternative: replacing hardware vs managing it.

    Low-power mobile drives beat EEVFS on joules (they idle at ~1.6 W
    against 7.5 W) but lose on response time (30 vs 58 MB/s media rate);
    EEVFS *on* low-power drives composes both savings.
    """
    from repro.baselines import run_lowpower

    trace = _trace()

    def run_all():
        return {
            "EEVFS (standard disks)": run_eevfs(trace, EEVFSConfig()),
            "low-power disks, NPF": run_lowpower(trace),
            "EEVFS on low-power": run_lowpower(trace, config=EEVFSConfig()),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, r.energy_j, r.mean_response_s, r.transitions]
        for name, r in results.items()
    ]
    print()
    print(
        format_table(
            ["system", "energy_J", "mean_response_s", "transitions"],
            rows,
            title="Hardware replacement vs power management",
        )
    )
    eevfs = results["EEVFS (standard disks)"]
    swap = results["low-power disks, NPF"]
    both = results["EEVFS on low-power"]
    assert swap.energy_j < eevfs.energy_j
    assert eevfs.mean_response_s < swap.mean_response_s
    assert both.energy_j < swap.energy_j
