"""Tables I and II regeneration (configuration fidelity checks)."""

from repro.core.config import default_cluster, PARAMETER_GRID
from repro.disk.specs import MB
from repro.experiments.tables import table1, table2


def test_table1_testbed(benchmark):
    text = benchmark(table1)
    print()
    print(text)
    cluster = default_cluster()
    # Table I row checks: 8 storage nodes in two types.
    assert cluster.n_nodes == 8
    bandwidths = sorted({n.disk_spec.bandwidth_bps for n in cluster.storage_nodes})
    assert bandwidths == [34 * MB, 58 * MB]
    nics = sorted({n.nic_bps * 8 / 1e6 for n in cluster.storage_nodes})
    assert nics == [100.0, 1000.0]


def test_table2_parameters(benchmark):
    text = benchmark(table2)
    print()
    print(text)
    assert PARAMETER_GRID["data_size_mb"] == (1, 10, 25, 50)
    assert PARAMETER_GRID["mu"] == (1, 10, 100, 1000)
    assert PARAMETER_GRID["inter_arrival_ms"] == (0, 350, 700, 1000)
    assert PARAMETER_GRID["prefetch_files"] == (10, 40, 70, 100)
    assert PARAMETER_GRID["idle_threshold_s"] == (5,)
