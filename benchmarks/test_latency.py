"""Response-time decomposition at paper scale: where the time goes.

Not a figure in the paper, but the measurement §VI-C reasons about
informally ("response time penalties are generally a product of the
state transitions"), made explicit: the PF-minus-NPF delta must live in
the disk component (spin-up waits), not the network.
"""

from conftest import N_REQUESTS
import numpy as np

from repro.core import EEVFSConfig, run_eevfs
from repro.metrics.report import format_table
from repro.traces.synthetic import generate_synthetic_trace, SyntheticWorkload


def test_latency_decomposition(benchmark):
    trace = generate_synthetic_trace(
        SyntheticWorkload(n_requests=N_REQUESTS), rng=np.random.default_rng(1)
    )

    def run_both():
        return (
            run_eevfs(trace, EEVFSConfig()),
            run_eevfs(trace, EEVFSConfig(prefetch_enabled=False)),
        )

    pf, npf = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for component in ("disk_s", "node_other_s", "network_server_s"):
        rows.append(
            [
                component,
                pf.latency_components[component].mean,
                npf.latency_components[component].mean,
            ]
        )
    rows.append(["total (mean response)", pf.mean_response_s, npf.mean_response_s])
    print()
    print(
        format_table(
            ["component", "PF_mean_s", "NPF_mean_s"],
            rows,
            title="Mean response time by component",
        )
    )

    # Components tile the response in both modes.
    for result in (pf, npf):
        total = sum(stat.mean for stat in result.latency_components.values())
        assert abs(total - result.mean_response_s) < 0.01 * result.mean_response_s
    # §VI-C: the PF penalty is a disk-side (spin-up) phenomenon.
    disk_delta = (
        pf.latency_components["disk_s"].mean - npf.latency_components["disk_s"].mean
    )
    network_delta = abs(
        pf.latency_components["network_server_s"].mean
        - npf.latency_components["network_server_s"].mean
    )
    assert disk_delta > 0
    assert disk_delta > 3 * network_delta
