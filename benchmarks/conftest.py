"""Shared fixtures for the benchmark harness.

Figures 3, 4 and 5 plot the *same* experiments three ways, so the
Table-II sweeps run once per session (inside the first benchmark that
needs them) and are shared via :data:`SWEEP_CACHE`.  Benchmarks that hit
the cache report near-zero times -- that is honest: they only assemble a
figure from existing runs, as the paper did.

``EEVFS_BENCH_REQUESTS`` overrides the trace length (default 1000, the
paper's scale).
"""

import os

import pytest

from repro.experiments.sweeps import run_sweep

#: Paper-scale request count unless overridden.
N_REQUESTS = int(os.environ.get("EEVFS_BENCH_REQUESTS", "1000"))

_SWEEP_CACHE = {}


def sweep_cached(name: str):
    """Run (once) and cache one Table-II sweep at benchmark scale."""
    if name not in _SWEEP_CACHE:
        _SWEEP_CACHE[name] = run_sweep(name, n_requests=N_REQUESTS)
    return _SWEEP_CACHE[name]


@pytest.fixture
def bench_requests():
    return N_REQUESTS


def series(points, getter):
    """Extract one column from a sweep's PairResults."""
    return [getter(p.comparison) for p in points]
