"""Fig. 4 regeneration: total power-state transitions, four panels.

Shape claims reproduced: near-zero transitions in the all-hit regimes
(small MU, large K), K=10 as the global worst case, NPF at zero.  Known
deviation (documented in EXPERIMENTS.md): the paper reports transitions
*decreasing* with data size and inter-arrival delay, where our policy
holds them roughly constant -- one sleep cycle per buffer miss.
"""

from conftest import series, sweep_cached

from repro.metrics.report import format_series


def _print_panel(letter, x_label, points):
    print()
    print(
        format_series(
            x_label,
            [p.value for p in points],
            {
                "PF_transitions": series(points, lambda c: float(c.pf.transitions)),
                "NPF_transitions": series(points, lambda c: float(c.npf.transitions)),
            },
            title=f"Fig4({letter})",
        )
    )


def test_fig4a_data_size(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cached("data_size"), rounds=1, iterations=1
    )
    _print_panel("a", "Data Size (MB)", points)
    transitions = series(points, lambda c: c.pf.transitions)
    assert all(t > 0 for t in transitions)
    assert all(c.npf.transitions == 0 for c in (p.comparison for p in points))
    # Transition count stays within the paper's order of magnitude band.
    assert all(50 <= t <= 1500 for t in transitions)


def test_fig4b_mu(benchmark):
    points = benchmark.pedantic(lambda: sweep_cached("mu"), rounds=1, iterations=1)
    _print_panel("b", "MU", points)
    transitions = series(points, lambda c: c.pf.transitions)
    # Paper: MU <= 100 transitions the disks once at the start and never
    # again (log-scale panel bottoming out).
    assert transitions[0] == transitions[1] == transitions[2]
    assert transitions[3] > 5 * transitions[0]


def test_fig4c_interarrival(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cached("inter_arrival"), rounds=1, iterations=1
    )
    _print_panel("c", "Inter-arrival delay (ms)", points)
    transitions = series(points, lambda c: c.pf.transitions)
    assert all(t >= 0 for t in transitions)
    # All loaded points stay in one band (no runaway thrash).
    assert max(transitions) <= 4 * max(1, min(t for t in transitions if t > 0))


def test_fig4d_prefetch_count(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cached("prefetch_count"), rounds=1, iterations=1
    )
    _print_panel("d", "# of files to prefetch", points)
    transitions = series(points, lambda c: c.pf.transitions)
    # Paper: K=10 is the maximum across ALL experiments (447 on the
    # testbed); monotone decrease with K.
    assert transitions == sorted(transitions, reverse=True)
    assert transitions[0] >= 2 * transitions[2]
    # §VI-B's trade-off: the K=10 point pays the most transitions for the
    # least savings.
    savings = series(points, lambda c: c.energy_savings_pct)
    assert savings[0] == min(savings)
